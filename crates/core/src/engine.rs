//! Shared BO-loop machinery: normalization, dataset, model management,
//! time accounting, observability and run recording.
//!
//! Every algorithm drives the same [`Engine`]:
//!
//! 1. [`Engine::builder`] validates the configuration and draws the
//!    Latin-hypercube initial design — from a seed stream that depends
//!    only on the run seed, **not** on the algorithm, so all five
//!    algorithms start from identical initial sets (the paper's
//!    protocol) — and evaluates it outside the timed budget (Table 2
//!    excludes the DoE from the 20 minutes);
//! 2. each cycle calls [`Engine::fit_model`] (charged as fitting time),
//!    builds a batch through its acquisition process (charged as
//!    acquisition time, via [`Engine::charge_acquisition`]), and
//!    commits it with [`Engine::commit_batch`] (charged the fixed
//!    virtual simulation cost);
//! 3. [`Engine::should_continue`] implements the stopping rule, and
//!    [`Engine::finish`] emits the [`RunRecord`].
//!
//! An optional [`Observer`] installed through the builder receives a
//! typed [`Event`] at each of these phase boundaries. Events are
//! emitted strictly **outside** the clock's `charge(..)` closures —
//! observer wall-time is never charged to the virtual clock — and are
//! never even constructed when observation is disabled.
//!
//! Internally everything is minimized over the unit cube; the problem's
//! native orientation and box are restored at the record boundary.

use crate::budget::{Budget, Stopping};
use crate::clock::{TimeCategory, VirtualClock};
use crate::error::ConfigError;
use crate::exec::{evaluate_batch_ft_observed, BatchReport};
use crate::observe::{Event, Observer};
use crate::record::{CycleRecord, FaultCounters, RunRecord};
use pbo_gp::{fit, FitWorkspace, GaussianProcess, SparseGaussianProcess, Surrogate, SurrogateModel};
use pbo_linalg::Matrix;
use pbo_opt::Bounds;
use pbo_problems::Problem;
use pbo_sampling::{lhs, SeedStream};
use rand::Rng;
use std::time::Instant;

pub use crate::config::{AcqConfig, AlgoConfig, FantasyKind, QeiConfig, SurrogateBackend};

/// Construct an event and hand it to the observer — but only when one
/// is installed and enabled, so disabled runs never pay for event
/// construction. A free function over the field (not a method) so emit
/// sites can keep disjoint borrows of the engine's other fields.
fn emit<'a>(observer: &mut Option<Box<dyn Observer + Send + 'a>>, build: impl FnOnce() -> Event) {
    if let Some(obs) = observer.as_deref_mut() {
        if obs.enabled() {
            obs.on_event(&build());
        }
    }
}

/// Re-borrow the boxed observer as the plain trait object the executor
/// expects (dropping the `Send` marker is a no-op unsizing coercion).
fn as_dyn<'b>(
    observer: &'b mut Option<Box<dyn Observer + Send + '_>>,
) -> Option<&'b mut (dyn Observer + 'b)> {
    match observer {
        Some(b) => Some(&mut **b),
        None => None,
    }
}

/// Emit one [`Event::PointFaulted`] per faulted outcome, in input
/// order — the same stream [`evaluate_batch_ft_observed`] produces.
/// Session tells synthesize their reports instead of evaluating, so
/// they need the emission on its own.
fn emit_report_faults<'a>(
    observer: &mut Option<Box<dyn Observer + Send + 'a>>,
    report: &BatchReport,
) {
    if let Some(obs) = observer.as_deref_mut() {
        if obs.enabled() {
            for (index, o) in report.outcomes.iter().enumerate() {
                if o.attempts > 1 || o.faults.any() {
                    obs.on_event(&Event::PointFaulted {
                        index,
                        attempts: o.attempts,
                        recovered: o.value.is_some(),
                        faults: o.faults,
                    });
                }
            }
        }
    }
}

/// How the engine holds its problem: borrowed for classic in-process
/// runs, owned for detached ask/tell sessions whose engine must outlive
/// the frame that created it (`Engine<'static>` in a session registry).
pub enum ProblemHandle<'a> {
    /// Caller keeps the problem alive for the duration of the run.
    Borrowed(&'a dyn Problem),
    /// The engine owns the problem (sessions; thread-movable).
    Owned(Box<dyn Problem + Send + Sync>),
}

impl ProblemHandle<'_> {
    /// The problem, whoever owns it.
    pub fn get(&self) -> &dyn Problem {
        match self {
            ProblemHandle::Borrowed(p) => *p,
            ProblemHandle::Owned(p) => p.as_ref(),
        }
    }
}

/// The shared optimization context.
pub struct Engine<'a> {
    problem: ProblemHandle<'a>,
    budget: Budget,
    cfg: AlgoConfig,
    clock: VirtualClock,
    seeds: SeedStream,
    algorithm: String,
    /// Unit-cube inputs (rows).
    x: Matrix,
    /// Minimization-oriented targets.
    y: Vec<f64>,
    /// The fitted surrogate — dense below the configured switch
    /// threshold, sparse above it.
    model: Option<SurrogateModel>,
    /// Fitting workspace reused across cycles: distance tables are
    /// rebuilt per fit (the data grows), but the n x n matrix buffers
    /// survive whenever the fitting-view shape repeats (e.g. capped
    /// `max_fit_points`, or warm refits between appends).
    fit_ws: FitWorkspace,
    cycles: Vec<CycleRecord>,
    /// Clock split snapshot at the start of the current cycle.
    cycle_start_split: (f64, f64, f64),
    cycle_idx: usize,
    seed: u64,
    /// Faults absorbed while evaluating the initial design.
    doe_faults: FaultCounters,
    /// Optional event sink (`None` and a disabled sink behave
    /// identically: no events are built).
    observer: Option<Box<dyn Observer + Send + 'a>>,
}

impl std::fmt::Debug for Engine<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("algorithm", &self.algorithm)
            .field("problem", &self.problem.get().name())
            .field("seed", &self.seed)
            .field("n_data", &self.y.len())
            .field("cycle_idx", &self.cycle_idx)
            .finish_non_exhaustive()
    }
}

/// Typed, validating constructor for [`Engine`] — see
/// [`Engine::builder`].
pub struct EngineBuilder<'a> {
    problem: ProblemHandle<'a>,
    budget: Option<Budget>,
    cfg: AlgoConfig,
    seed: u64,
    algorithm: String,
    q: Option<usize>,
    observer: Option<Box<dyn Observer + Send + 'a>>,
}

impl<'a> EngineBuilder<'a> {
    /// Set the full budget (otherwise `Budget::paper(q)` is used).
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Set the batch size, overriding the budget's `batch_size`.
    pub fn q(mut self, q: usize) -> Self {
        self.q = Some(q);
        self
    }

    /// Set the algorithm configuration.
    pub fn config(mut self, cfg: AlgoConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Set the run seed (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the algorithm display name used for seed forking and the
    /// run record (default `"engine"`).
    pub fn algorithm(mut self, name: &str) -> Self {
        self.algorithm = name.to_string();
        self
    }

    /// Install an event sink. At most one; tee with
    /// [`crate::observe::FanoutObserver`] if several are needed.
    pub fn observer(mut self, observer: impl Observer + Send + 'a) -> Self {
        self.observer = Some(Box::new(observer));
        self
    }

    /// Validate the configuration and draw (but do not evaluate) the
    /// initial design. The returned [`PreparedEngine`] is the suspend
    /// point ask/tell sessions hand to a remote evaluator; in-process
    /// callers never see it because [`EngineBuilder::build`] immediately
    /// resolves it with [`PreparedEngine::evaluate_design`].
    ///
    /// Fails with a typed [`ConfigError`] instead of panicking: zero
    /// batch size, a sub-2 initial design and non-finite budgets/knobs
    /// all surface here (a fully failed design surfaces at absorb time).
    pub fn prepare(self) -> Result<PreparedEngine<'a>, ConfigError> {
        let EngineBuilder { problem, budget, cfg, seed, algorithm, q, observer: mut obs } = self;
        if q == Some(0) {
            return Err(ConfigError::ZeroBatchSize);
        }
        let mut budget = budget.unwrap_or_else(|| Budget::paper(q.unwrap_or(1)));
        if let Some(q) = q {
            budget.batch_size = q;
        }
        budget.validate()?;
        cfg.validate()?;

        let d = problem.get().dim();
        let root = SeedStream::new(seed);
        // The DoE stream must not depend on the algorithm: the paper
        // hands the same 10 initial sets to every method.
        let mut doe_seeds = root.fork_named("doe");
        let n0 = budget.initial_samples.max(2);
        let unit_pts = lhs::maximin_latin_hypercube(&mut doe_seeds.rng(), n0, d, 4);
        let native: Vec<Vec<f64>> = unit_pts
            .iter()
            .map(|u| {
                let mut x = u.clone();
                pbo_sampling::scale_to_box(&mut x, problem.get().lower(), problem.get().upper());
                x
            })
            .collect();
        emit(&mut obs, || Event::RunStarted {
            algorithm: algorithm.clone(),
            problem: problem.get().name().to_string(),
            seed,
            q: budget.batch_size,
            dim: d,
        });
        Ok(PreparedEngine {
            problem,
            budget,
            cfg,
            seed,
            algorithm,
            design_unit: unit_pts,
            design_native: native,
            observer: obs,
        })
    }

    /// Validate the configuration, evaluate the initial design
    /// (untimed) and return the ready engine.
    ///
    /// Fails with a typed [`ConfigError`] instead of panicking: zero
    /// batch size, a sub-2 initial design, non-finite budgets/knobs, a
    /// shrinking retry backoff or a fully failed initial design all
    /// surface here.
    pub fn build(self) -> Result<Engine<'a>, ConfigError> {
        self.prepare()?.evaluate_design()
    }
}

/// An engine suspended at the initial-design evaluate boundary: the
/// configuration is validated, the Latin-hypercube design is drawn and
/// `RunStarted` has been emitted, but nothing has been evaluated yet.
///
/// In-process runs resolve it immediately via
/// [`PreparedEngine::evaluate_design`]; ask/tell sessions instead ship
/// [`PreparedEngine::design_native`] to a remote evaluator and feed the
/// resulting values back through [`PreparedEngine::absorb_design`].
pub struct PreparedEngine<'a> {
    problem: ProblemHandle<'a>,
    budget: Budget,
    cfg: AlgoConfig,
    seed: u64,
    algorithm: String,
    design_unit: Vec<Vec<f64>>,
    design_native: Vec<Vec<f64>>,
    observer: Option<Box<dyn Observer + Send + 'a>>,
}

impl<'a> PreparedEngine<'a> {
    /// The initial design in the problem's native box — the points a
    /// remote evaluator must simulate before the run can start.
    pub fn design_native(&self) -> &[Vec<f64>] {
        &self.design_native
    }

    /// The problem being optimized.
    pub fn problem(&self) -> &dyn Problem {
        self.problem.get()
    }

    /// The validated budget (batch size, stopping rule, sim cost).
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// The validated algorithm configuration.
    pub fn cfg(&self) -> &AlgoConfig {
        &self.cfg
    }

    /// Emit the per-point fault events a batch report carries, in input
    /// order — exactly what the in-process evaluator would have emitted.
    pub fn emit_report_faults(&mut self, report: &BatchReport) {
        emit_report_faults(&mut self.observer, report);
    }

    /// Evaluate the design in-process through the fault-tolerant pool
    /// and absorb it. `build()` is exactly `prepare()` + this.
    pub fn evaluate_design(mut self) -> Result<Engine<'a>, ConfigError> {
        // The DoE goes through the fault-tolerant pool too (a crashed
        // rank during initial sampling must not kill the run). Failed
        // design points are *dropped*, not imputed: with no dataset yet
        // there is no liar value to borrow, and a slightly smaller DoE
        // is exactly what the paper's cluster would deliver.
        let report = evaluate_batch_ft_observed(
            self.problem.get(),
            &self.design_native,
            self.budget.sim_seconds,
            &self.cfg.ft,
            as_dyn(&mut self.observer),
        );
        self.absorb_design(&report)
    }

    /// Absorb an already-evaluated initial design and return the ready
    /// engine. The report's outcomes must be aligned with
    /// [`PreparedEngine::design_native`] (one per design point, in
    /// order). Failed points are dropped; a fully failed design is the
    /// typed [`ConfigError::EmptyDesign`].
    pub fn absorb_design(self, report: &BatchReport) -> Result<Engine<'a>, ConfigError> {
        let PreparedEngine {
            problem,
            budget,
            cfg,
            seed,
            algorithm,
            design_unit,
            design_native: _,
            observer: mut obs,
        } = self;
        let d = problem.get().dim();
        let n0 = budget.initial_samples.max(2);
        let mut doe_faults = report.counters();
        let mut x = Matrix::zeros(0, d);
        let mut y = Vec::with_capacity(n0);
        for (u, o) in design_unit.iter().zip(&report.outcomes) {
            match o.value {
                Some(v) => {
                    x.push_row(u).expect("DoE width");
                    y.push(v);
                }
                None => doe_faults.dropped += 1,
            }
        }
        if y.is_empty() {
            return Err(ConfigError::EmptyDesign);
        }
        let evaluated = y.len();
        emit(&mut obs, || Event::DesignEvaluated {
            requested: n0,
            evaluated,
            faults: doe_faults,
        });
        let clock = VirtualClock::new(cfg.cost_model);
        Ok(Engine {
            problem,
            budget,
            cfg,
            clock,
            // `fork_named` is pure in (seed, label): re-deriving the
            // algorithm stream here is bit-identical to forking it from
            // the root stream in `prepare`.
            seeds: SeedStream::new(seed).fork_named(&algorithm),
            algorithm,
            x,
            y,
            model: None,
            fit_ws: FitWorkspace::new(),
            cycles: Vec::new(),
            cycle_start_split: (0.0, 0.0, 0.0),
            cycle_idx: 0,
            seed,
            doe_faults,
            observer: obs,
        })
    }
}

impl<'a> Engine<'a> {
    /// Start building an engine for `problem`.
    pub fn builder(problem: &'a dyn Problem) -> EngineBuilder<'a> {
        EngineBuilder {
            problem: ProblemHandle::Borrowed(problem),
            budget: None,
            cfg: AlgoConfig::default(),
            seed: 0,
            algorithm: "engine".to_string(),
            q: None,
            observer: None,
        }
    }

    /// Start building an engine that owns its problem — required for
    /// detached sessions where the engine outlives its creating frame
    /// and moves across threads.
    pub fn builder_owned(problem: Box<dyn Problem + Send + Sync>) -> EngineBuilder<'static> {
        EngineBuilder {
            problem: ProblemHandle::Owned(problem),
            budget: None,
            cfg: AlgoConfig::default(),
            seed: 0,
            algorithm: "engine".to_string(),
            q: None,
            observer: None,
        }
    }

    /// The algorithm configuration.
    pub fn cfg(&self) -> &AlgoConfig {
        &self.cfg
    }

    /// The budget.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// Batch size q.
    pub fn q(&self) -> usize {
        self.budget.batch_size
    }

    /// Problem dimension.
    pub fn dim(&self) -> usize {
        self.problem.get().dim()
    }

    /// The problem being optimized.
    pub fn problem(&self) -> &dyn Problem {
        self.problem.get()
    }

    /// The algorithm display name.
    pub fn algorithm(&self) -> &str {
        &self.algorithm
    }

    /// Current virtual-clock reading (seconds).
    pub fn now(&self) -> f64 {
        self.clock.now()
    }

    /// Unit-cube bounds of the (normalized) search space.
    pub fn unit_bounds(&self) -> Bounds {
        Bounds::unit(self.dim())
    }

    /// Mutable access to the virtual clock (acquisition charging).
    pub fn clock(&mut self) -> &mut VirtualClock {
        &mut self.clock
    }

    /// Per-run seed stream (fork, don't consume directly, for
    /// reproducible per-component randomness).
    pub fn seeds(&mut self) -> &mut SeedStream {
        &mut self.seeds
    }

    /// Number of observations so far.
    pub fn n_data(&self) -> usize {
        self.y.len()
    }

    /// Index of the current (not-yet-committed) cycle.
    pub fn cycle_index(&self) -> usize {
        self.cycle_idx
    }

    /// Best (smallest) observed minimized value.
    pub fn best_min(&self) -> f64 {
        self.y.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Unit-cube location of the incumbent.
    pub fn best_x_unit(&self) -> Vec<f64> {
        let i = pbo_linalg::vec_ops::argmin(&self.y).expect("non-empty data");
        self.x.row(i).to_vec()
    }

    /// All observations (unit inputs, minimized outputs).
    pub fn data(&self) -> (&Matrix, &[f64]) {
        (&self.x, &self.y)
    }

    /// The current dense GP (must be fitted first). Panics when the
    /// engine is running the sparse backend — backend-agnostic callers
    /// should use [`Engine::model`] instead.
    pub fn gp(&self) -> &GaussianProcess {
        match self.model.as_ref().expect("fit_model must be called before gp()") {
            SurrogateModel::Dense(g) => g,
            SurrogateModel::Sparse(_) => panic!(
                "gp() is dense-only and the engine is running the sparse backend; \
                 use Engine::model() for backend-agnostic access"
            ),
        }
    }

    /// The current surrogate, whichever backend is active (must be
    /// fitted first).
    pub fn model(&self) -> &SurrogateModel {
        self.model.as_ref().expect("fit_model must be called before model()")
    }

    /// True while the stopping rule allows another cycle.
    pub fn should_continue(&self) -> bool {
        match self.budget.stopping {
            Stopping::VirtualTime(t) => self.clock.now() < t,
            Stopping::Cycles(n) => self.cycle_idx < n,
        }
    }

    /// Mark the start of a cycle for time attribution. Called by
    /// [`Engine::fit_model`]; algorithms that skip fitting (random
    /// search) call it directly.
    pub fn begin_cycle(&mut self) {
        self.cycle_start_split = self.clock.split();
        let cycle = self.cycle_idx;
        let clock = self.clock.now();
        emit(&mut self.observer, || Event::CycleStarted { cycle, clock });
    }

    /// Fit or refit the surrogate, charged as fitting time. Full
    /// multistart fits happen on the first cycle and every
    /// `full_fit_every`-th one; other cycles warm-start from the current
    /// hyperparameters with the reduced budget, or — when
    /// `incremental_updates` is set — freeze the hyperparameters and
    /// extend the cached Cholesky factor with only the new rows
    /// (O(n²q) instead of O(n³)).
    pub fn fit_model(&mut self) {
        self.begin_cycle();
        let (f0, _, _) = self.cycle_start_split;
        let full = self.model.is_none() || self.cycle_idx.is_multiple_of(self.cfg.full_fit_every);
        // The sparse backend takes over once the dataset reaches the
        // configured switch threshold; below it every branch is the
        // dense path, byte-identical to a `Dense` configuration.
        let sparse_m = match self.cfg.surrogate {
            SurrogateBackend::Sparse { m, switch_at } if self.y.len() >= switch_at => Some(m),
            _ => None,
        };
        let cfg = self.cfg.fit.clone();
        let x = self.x.clone();
        let y = self.y.clone();
        let prev = self.model.take();
        let mut seeds = self.seeds.fork(0xF17 + self.cycle_idx as u64);
        let mut ws = std::mem::take(&mut self.fit_ws);
        let wall = Instant::now();
        let fitted = self.clock.charge(TimeCategory::Fit, || {
            if let Some(m) = sparse_m {
                let stub = fit::FitReport { mll: f64::NAN, evals: 0, starts: 0 };
                if full {
                    let warm = prev.as_ref().map(|g| (g.kernel().clone(), g.noise()));
                    fit::fit_sparse_with(
                        &x,
                        &y,
                        &cfg,
                        m,
                        warm.as_ref().map(|(k, n)| (k, *n)),
                        &mut seeds,
                        &mut ws,
                    )
                    .map(|(g, rep)| (SurrogateModel::Sparse(g), rep))
                } else if let Some(sg) = prev.as_ref().and_then(SurrogateModel::as_sparse) {
                    // Non-full sparse cycle: hyperparameters and the
                    // inducing basis stay frozen; the new observations
                    // enter through the O(m²q) Woodbury append.
                    let k = sg.n();
                    let xs_new: Vec<Vec<f64>> = (k..y.len()).map(|i| x.row(i).to_vec()).collect();
                    sg.condition_on(&xs_new, &y[k..]).map(|g| (SurrogateModel::Sparse(g), stub))
                } else {
                    // Dense → sparse transition on a non-full cycle:
                    // rebuild in sparse form with the previous
                    // hyperparameters frozen until the next full fit.
                    let prev = prev.as_ref().expect("non-full cycle requires a model");
                    SparseGaussianProcess::new(x.clone(), &y, prev.kernel().clone(), prev.noise(), m)
                        .map(|g| (SurrogateModel::Sparse(g), stub))
                }
            } else if full {
                let warm = prev.as_ref().map(|g| (g.kernel().clone(), g.noise()));
                fit::fit_with(
                    &x,
                    &y,
                    &cfg,
                    warm.as_ref().map(|(k, n)| (k, *n)),
                    &mut seeds,
                    &mut ws,
                )
                .map(|(g, rep)| (SurrogateModel::Dense(g), rep))
            } else if self.cfg.incremental_updates {
                // Hyperparameter-stable cycle: append only the rows that
                // arrived since the model was built. `update` falls back
                // to a frozen-hyperparameter rebuild internally if the
                // factor extension fails, so the surrogate is identical
                // either way.
                let prev = prev
                    .as_ref()
                    .and_then(SurrogateModel::as_dense)
                    .expect("incremental update requires a dense model");
                let k = prev.n();
                let xs_new: Vec<Vec<f64>> = (k..y.len()).map(|i| x.row(i).to_vec()).collect();
                prev.update(&xs_new, &y[k..]).map(|g| {
                    (SurrogateModel::Dense(g), fit::FitReport { mll: f64::NAN, evals: 0, starts: 0 })
                })
            } else {
                let prev = prev
                    .as_ref()
                    .and_then(SurrogateModel::as_dense)
                    .expect("warm refit requires a dense model");
                // Rebuild on the full data with the previous hypers, then
                // take a few warm L-BFGS steps.
                GaussianProcess::new(x.clone(), &y, prev.kernel().clone(), prev.noise())
                    .and_then(|g| fit::refit_warm_with(&g, &cfg, &mut seeds, &mut ws))
                    .map(|(g, rep)| (SurrogateModel::Dense(g), rep))
            }
        });
        let wall_ns = wall.elapsed().as_nanos() as u64;
        self.fit_ws = ws;
        let n = self.y.len();
        let cycle = self.cycle_idx;
        match fitted {
            Ok((g, rep)) => {
                self.model = Some(g);
                let virtual_s = self.clock.split().0 - f0;
                emit(&mut self.observer, || Event::FitCompleted {
                    cycle,
                    n,
                    full,
                    restarts: rep.starts,
                    evals: rep.evals,
                    mll: rep.mll,
                    fallback: false,
                    wall_ns,
                    virtual_s,
                });
            }
            Err(_) => {
                // Last-resort fallback: default kernel, larger noise,
                // dense regardless of backend (it must always build).
                let kernel = pbo_gp::kernel::Kernel::new(cfg.family, self.x.cols());
                self.model = Some(SurrogateModel::Dense(
                    GaussianProcess::new(self.x.clone(), &self.y, kernel, 1e-2)
                        .expect("fallback GP must build"),
                ));
                let virtual_s = self.clock.split().0 - f0;
                emit(&mut self.observer, || Event::FitCompleted {
                    cycle,
                    n,
                    full,
                    restarts: 0,
                    evals: 0,
                    mll: f64::NAN,
                    fallback: true,
                    wall_ns,
                    virtual_s,
                });
            }
        }
    }

    /// Run an acquisition process, charge it to the acquisition clock
    /// (`workers > 1` divides the measured time, modelling genuinely
    /// parallel sub-acquisitions as in BSP-EGO) and emit the
    /// [`Event::AcquisitionCompleted`] telemetry. `work` returns the
    /// built batch (or any payload) plus its multistart restart
    /// shortfall; the event is emitted *after* charging, outside the
    /// timed region.
    pub fn charge_acquisition<T>(
        &mut self,
        workers: usize,
        work: impl FnOnce() -> (T, usize),
    ) -> T {
        let a0 = self.clock.split().1;
        let wall = Instant::now();
        let (out, restart_shortfall) = if workers > 1 {
            self.clock.charge_parallel(TimeCategory::Acquisition, workers, work)
        } else {
            self.clock.charge(TimeCategory::Acquisition, work)
        };
        let wall_ns = wall.elapsed().as_nanos() as u64;
        let virtual_s = self.clock.split().1 - a0;
        let cycle = self.cycle_idx;
        let q = self.budget.batch_size;
        let algorithm = &self.algorithm;
        emit(&mut self.observer, || Event::AcquisitionCompleted {
            cycle,
            algo: algorithm.clone(),
            q,
            restart_shortfall,
            wall_ns,
            virtual_s,
        });
        out
    }

    /// [`Engine::charge_acquisition`] for variable-q algorithms: the
    /// acquisition process itself decides the cycle's batch size, so
    /// the [`Event::AcquisitionCompleted`] telemetry reports the batch
    /// it actually built rather than the configured q. Fixed-q
    /// algorithms keep using `charge_acquisition`, whose event stream
    /// is pinned bit-identical to the pre-variable-q engine.
    pub fn charge_batch_acquisition(
        &mut self,
        workers: usize,
        work: impl FnOnce() -> (Vec<Vec<f64>>, usize),
    ) -> Vec<Vec<f64>> {
        let a0 = self.clock.split().1;
        let wall = Instant::now();
        let (batch, restart_shortfall) = if workers > 1 {
            self.clock.charge_parallel(TimeCategory::Acquisition, workers, work)
        } else {
            self.clock.charge(TimeCategory::Acquisition, work)
        };
        let wall_ns = wall.elapsed().as_nanos() as u64;
        let virtual_s = self.clock.split().1 - a0;
        let cycle = self.cycle_idx;
        let q = batch.len();
        let algorithm = &self.algorithm;
        emit(&mut self.observer, || Event::AcquisitionCompleted {
            cycle,
            algo: algorithm.clone(),
            q,
            restart_shortfall,
            wall_ns,
            virtual_s,
        });
        batch
    }

    /// Replace batch entries that duplicate existing data or each other
    /// with random exploration points (numerical safety: exact
    /// duplicates make the kernel matrix singular and carry no
    /// information anyway).
    pub fn sanitize_batch(&mut self, batch: &mut [Vec<f64>]) {
        let mut rng = self.seeds.fork(0xDED + self.cycle_idx as u64).rng();
        let d = self.dim();
        for i in 0..batch.len() {
            let mut dup = false;
            for j in 0..self.x.rows() {
                if close(&batch[i], self.x.row(j)) {
                    dup = true;
                    break;
                }
            }
            if !dup {
                for j in 0..i {
                    if close(&batch[i], &batch[j]) {
                        dup = true;
                        break;
                    }
                }
            }
            if dup {
                batch[i] = (0..d).map(|_| rng.gen::<f64>()).collect();
            }
        }
    }

    /// Evaluate a batch through the fault-tolerant pool, charge the
    /// virtual simulation time (max over ranks + dispatch overhead,
    /// the paper's MPI accounting — so retries and stragglers lengthen
    /// the *reported* cycle, never the host run), append to the dataset
    /// with graceful degradation, and close the cycle record.
    ///
    /// Degradation policy: a point that exhausts its retries is imputed
    /// constant-liar style with the dataset maximum (pessimistic, so it
    /// can never displace the incumbent nor attract the next batch), or
    /// dropped in the impossible case of an empty dataset. NaN/Inf
    /// never reach the GP.
    pub fn commit_batch(&mut self, batch: Vec<Vec<f64>>) {
        assert!(!batch.is_empty(), "cannot commit an empty batch");
        let native = self.to_native(&batch);
        let report: BatchReport = evaluate_batch_ft_observed(
            self.problem.get(),
            &native,
            self.budget.sim_seconds,
            &self.cfg.ft,
            as_dyn(&mut self.observer),
        );
        self.commit_report(batch, &report);
    }

    /// Map a unit-cube batch into the problem's native box — the points
    /// an (in-process or remote) evaluator actually simulates.
    pub fn to_native(&self, batch: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let p = self.problem.get();
        batch
            .iter()
            .map(|u| {
                let mut x = u.clone();
                pbo_sampling::scale_to_box(&mut x, p.lower(), p.upper());
                x
            })
            .collect()
    }

    /// Emit the per-point fault events a batch report carries, in input
    /// order — exactly what the in-process evaluator would have emitted.
    /// Ask/tell sessions call this before [`Engine::commit_report`]
    /// because their reports are synthesized from remote values instead
    /// of coming out of [`evaluate_batch_ft_observed`].
    pub fn emit_report_faults(&mut self, report: &BatchReport) {
        emit_report_faults(&mut self.observer, report);
    }

    /// Absorb an already-evaluated batch: charge the virtual simulation
    /// time, append to the dataset with graceful degradation and close
    /// the cycle record. `batch` is in unit coordinates and must be
    /// aligned with `report.outcomes`. This is the second half of
    /// [`Engine::commit_batch`]; sessions call it directly with a
    /// report built from remote evaluations.
    pub fn commit_report(&mut self, batch: Vec<Vec<f64>>, report: &BatchReport) {
        assert!(!batch.is_empty(), "cannot commit an empty batch");
        let before_best = self.best_min();
        let mut faults = report.counters();
        // One virtual rank per batch element: the pool's wall time is
        // the slowest rank's, plus the dispatch overhead. Fault-free,
        // every rank costs exactly `sim_seconds` and this reduces to
        // the original `batch_sim_time` charge.
        let charged = report.max_rank_secs()
            + self.budget.dispatch_overhead
            + self.budget.dispatch_overhead_per_point * batch.len() as f64;
        self.clock.charge_virtual(TimeCategory::Simulation, charged);
        // Constant-liar value: worst finite observation across the
        // dataset and this batch's successes.
        let liar = report
            .outcomes
            .iter()
            .filter_map(|o| o.value)
            .chain(self.y.iter().copied())
            .fold(f64::NEG_INFINITY, f64::max);
        let mut n_evals = 0usize;
        for (u, o) in batch.iter().zip(&report.outcomes) {
            let value = match o.value {
                Some(v) => v,
                None if liar.is_finite() => {
                    faults.imputed += 1;
                    liar
                }
                None => {
                    faults.dropped += 1;
                    continue;
                }
            };
            debug_assert!(value.is_finite(), "non-finite value past quarantine");
            self.x.push_row(u).expect("batch width");
            self.y.push(value);
            n_evals += 1;
        }
        let (f0, a0, s0) = self.cycle_start_split;
        let (f1, a1, s1) = self.clock.split();
        let record = CycleRecord {
            cycle: self.cycle_idx,
            fit_time: f1 - f0,
            acq_time: a1 - a0,
            sim_time: s1 - s0,
            n_evals,
            best_y_min: self.best_min(),
            clock: self.clock.now(),
            faults,
        };
        let n_points = batch.len();
        emit(&mut self.observer, || Event::BatchEvaluated {
            cycle: record.cycle,
            n_points,
            n_evals: record.n_evals,
            faults: record.faults,
            virtual_s: record.sim_time,
        });
        if record.best_y_min < before_best {
            emit(&mut self.observer, || Event::IncumbentImproved {
                cycle: record.cycle,
                best_y_min: record.best_y_min,
            });
        }
        self.cycles.push(record);
        self.cycle_idx += 1;
    }

    /// Close the run and emit its record.
    pub fn finish(mut self) -> RunRecord {
        let n_cycles = self.cycles.len();
        let n_simulations = self.y.len();
        let best_y_min = self.best_min();
        let final_clock = self.clock.now();
        emit(&mut self.observer, || Event::RunFinished {
            n_cycles,
            n_simulations,
            best_y_min,
            final_clock,
        });
        let best_x = {
            let mut u = self.best_x_unit();
            let p = self.problem.get();
            pbo_sampling::scale_to_box(&mut u, p.lower(), p.upper());
            u
        };
        RunRecord {
            best_x,
            algorithm: self.algorithm,
            problem: self.problem.get().name().to_string(),
            maximize: self.problem.get().maximize(),
            batch_size: self.budget.batch_size,
            seed: self.seed,
            // Dropped design points never entered `y_min`, so the
            // recorded DoE size is what actually survived.
            doe_size: self.budget.initial_samples.max(2) - self.doe_faults.dropped as usize,
            y_min: self.y,
            cycles: self.cycles,
            final_clock,
            doe_faults: self.doe_faults,
        }
    }
}

/// Coordinate-wise closeness test for duplicate detection.
fn close(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < 1e-10)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::CollectingObserver;
    use pbo_problems::SyntheticFn;
    use std::sync::{Arc, Mutex};

    fn engine_for_test<'a>(p: &'a SyntheticFn, q: usize) -> Engine<'a> {
        let budget = Budget::cycles(3, q).with_initial_samples(8);
        Engine::builder(p)
            .budget(budget)
            .config(AlgoConfig::test_profile())
            .seed(42)
            .algorithm("test")
            .build()
            .unwrap()
    }

    #[test]
    fn builder_defaults_to_paper_budget_for_q() {
        let p = SyntheticFn::ackley(3);
        let e = Engine::builder(&p).q(2).config(AlgoConfig::test_profile()).build().unwrap();
        assert_eq!(e.q(), 2);
        assert_eq!(e.budget().initial_samples, 32);
    }

    #[test]
    fn builder_rejects_invalid_configurations_with_typed_errors() {
        let p = SyntheticFn::ackley(3);
        // 1. Zero batch size.
        assert_eq!(
            Engine::builder(&p).q(0).build().unwrap_err(),
            ConfigError::ZeroBatchSize
        );
        // 2. Initial design too small to seed a surrogate.
        let mut b = Budget::cycles(1, 2);
        b.initial_samples = 1;
        assert_eq!(
            Engine::builder(&p).budget(b).build().unwrap_err(),
            ConfigError::InitialSamplesTooSmall { got: 1 }
        );
        // 3. Non-positive simulation cost.
        let mut b = Budget::cycles(1, 2).with_initial_samples(8);
        b.sim_seconds = 0.0;
        assert!(matches!(
            Engine::builder(&p).budget(b).build().unwrap_err(),
            ConfigError::NonPositive { field: "budget.sim_seconds", .. }
        ));
        // 4. Shrinking retry backoff.
        let mut cfg = AlgoConfig::test_profile();
        cfg.ft.backoff_factor = 0.0;
        assert_eq!(
            Engine::builder(&p).q(2).config(cfg).build().unwrap_err(),
            ConfigError::BackoffFactorTooSmall { got: 0.0 }
        );
        // 5. Degenerate acquisition budget.
        let mut cfg = AlgoConfig::test_profile();
        cfg.acq.raw_samples = 0;
        assert_eq!(
            Engine::builder(&p).q(2).config(cfg).build().unwrap_err(),
            ConfigError::ZeroField { field: "cfg.acq.raw_samples" }
        );
        // 6. Incremental updates with an every-cycle refit schedule:
        //    there would be no hyperparameter-stable cycle to update on.
        let mut cfg = AlgoConfig::test_profile();
        cfg.incremental_updates = true;
        cfg.full_fit_every = 1;
        assert_eq!(
            Engine::builder(&p).q(2).config(cfg).build().unwrap_err(),
            ConfigError::IncrementalUpdatesNeedStableCycles
        );
    }

    #[test]
    fn incremental_updates_extend_the_surrogate_between_full_fits() {
        let p = SyntheticFn::ackley(3);
        let sink = Arc::new(Mutex::new(CollectingObserver::new()));
        let mut cfg = AlgoConfig::test_profile();
        cfg.incremental_updates = true;
        cfg.full_fit_every = 2;
        let budget = Budget::cycles(4, 2).with_initial_samples(8);
        let mut e = Engine::builder(&p)
            .budget(budget)
            .config(cfg)
            .seed(3)
            .algorithm("test")
            .observer(sink.clone())
            .build()
            .unwrap();
        while e.should_continue() {
            e.fit_model();
            // The surrogate always covers the whole dataset, whether it
            // was refit from scratch or extended in place.
            assert_eq!(e.gp().n(), e.n_data());
            let c = e.cycle_index() as f64;
            let mut batch =
                vec![vec![0.25, 0.3, 0.1 + 0.05 * c], vec![0.75, 0.2, 0.15 + 0.05 * c]];
            e.sanitize_batch(&mut batch);
            e.commit_batch(batch);
        }
        e.finish();
        let events = std::mem::take(&mut sink.lock().unwrap().events);
        let fits: Vec<(bool, bool)> = events
            .iter()
            .filter_map(|ev| match ev {
                Event::FitCompleted { full, fallback, .. } => Some((*full, *fallback)),
                _ => None,
            })
            .collect();
        // Cycles 0/2 are full fits; 1/3 take the incremental fast path,
        // and none of them hit the last-resort fallback surrogate.
        assert_eq!(fits, vec![(true, false), (false, false), (true, false), (false, false)]);
    }

    #[test]
    fn doe_is_algorithm_independent() {
        let p = SyntheticFn::ackley(4);
        let budget = Budget::cycles(1, 2).with_initial_samples(8);
        let build = |seed: u64, name: &str| {
            Engine::builder(&p)
                .budget(budget)
                .config(AlgoConfig::test_profile())
                .seed(seed)
                .algorithm(name)
                .build()
                .unwrap()
        };
        let a = build(7, "alg-a");
        let b = build(7, "alg-b");
        assert_eq!(a.data().0.as_slice(), b.data().0.as_slice());
        assert_eq!(a.data().1, b.data().1);
        // Different seeds → different DoEs.
        let c = build(8, "alg-a");
        assert_ne!(a.data().0.as_slice(), c.data().0.as_slice());
    }

    #[test]
    fn fit_and_commit_cycle_accounting() {
        let p = SyntheticFn::ackley(3);
        let mut e = engine_for_test(&p, 2);
        assert_eq!(e.n_data(), 8);
        e.fit_model();
        let batch = vec![vec![0.3, 0.3, 0.3], vec![0.7, 0.2, 0.9]];
        e.commit_batch(batch);
        assert_eq!(e.n_data(), 10);
        let r = e.finish();
        assert_eq!(r.n_cycles(), 1);
        assert_eq!(r.cycles[0].n_evals, 2);
        // Fixed cost model: fit = 1s, sim = 10 + 0.5 + 0.1.
        assert!((r.cycles[0].fit_time - 1.0).abs() < 1e-9);
        assert!((r.cycles[0].sim_time - 10.6).abs() < 1e-9);
    }

    #[test]
    fn observer_sees_phase_events_with_exact_virtual_times() {
        let p = SyntheticFn::ackley(3);
        let sink = Arc::new(Mutex::new(CollectingObserver::new()));
        let budget = Budget::cycles(3, 2).with_initial_samples(8);
        let mut e = Engine::builder(&p)
            .budget(budget)
            .config(AlgoConfig::test_profile())
            .seed(42)
            .algorithm("test")
            .observer(sink.clone())
            .build()
            .unwrap();
        e.fit_model();
        let batch = e.charge_acquisition(1, || (vec![vec![0.3, 0.3, 0.3], vec![0.7, 0.2, 0.9]], 5));
        e.commit_batch(batch);
        let r = e.finish();
        let events = std::mem::take(&mut sink.lock().unwrap().events);
        let names: Vec<&str> = events.iter().map(|e| e.name()).collect();
        assert_eq!(
            names,
            vec![
                "run_started",
                "design_evaluated",
                "cycle_started",
                "fit_completed",
                "acquisition_completed",
                "batch_evaluated",
                "incumbent_improved",
                "run_finished"
            ]
        );
        for ev in &events {
            match ev {
                Event::FitCompleted { virtual_s, n, full, fallback, .. } => {
                    assert_eq!(virtual_s.to_bits(), r.cycles[0].fit_time.to_bits());
                    assert_eq!(*n, 8);
                    assert!(*full);
                    assert!(!*fallback);
                }
                Event::AcquisitionCompleted { virtual_s, restart_shortfall, q, .. } => {
                    assert_eq!(virtual_s.to_bits(), r.cycles[0].acq_time.to_bits());
                    assert_eq!(*restart_shortfall, 5);
                    assert_eq!(*q, 2);
                }
                Event::BatchEvaluated { virtual_s, n_evals, .. } => {
                    assert_eq!(virtual_s.to_bits(), r.cycles[0].sim_time.to_bits());
                    assert_eq!(*n_evals, 2);
                }
                Event::RunFinished { n_simulations, final_clock, .. } => {
                    assert_eq!(*n_simulations, r.n_simulations());
                    assert_eq!(final_clock.to_bits(), r.final_clock.to_bits());
                }
                _ => {}
            }
        }
    }

    #[test]
    fn observed_and_unobserved_runs_are_bit_identical() {
        let p = SyntheticFn::ackley(3);
        let budget = Budget::cycles(2, 2).with_initial_samples(8);
        let run = |observe: bool| {
            let mut b = Engine::builder(&p)
                .budget(budget)
                .config(AlgoConfig::test_profile())
                .seed(9)
                .algorithm("test");
            if observe {
                b = b.observer(Arc::new(Mutex::new(CollectingObserver::new())));
            }
            let mut e = b.build().unwrap();
            while e.should_continue() {
                e.fit_model();
                let c = e.cycle_index() as f64;
                let mut batch = e.charge_acquisition(1, || {
                    (vec![vec![0.3, 0.3, 0.2 + 0.1 * c], vec![0.7, 0.2, 0.1 + 0.1 * c]], 0)
                });
                e.sanitize_batch(&mut batch);
                e.commit_batch(batch);
            }
            e.finish()
        };
        let plain = run(false);
        let observed = run(true);
        assert_eq!(plain.y_min, observed.y_min);
        let bits = |r: &RunRecord| {
            r.cycles
                .iter()
                .map(|c| {
                    (
                        c.fit_time.to_bits(),
                        c.acq_time.to_bits(),
                        c.sim_time.to_bits(),
                        c.clock.to_bits(),
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(bits(&plain), bits(&observed));
    }

    #[test]
    fn stopping_by_cycles() {
        let p = SyntheticFn::ackley(3);
        let mut e = engine_for_test(&p, 1);
        let mut cycles = 0;
        while e.should_continue() {
            e.fit_model();
            e.commit_batch(vec![vec![0.5, 0.5, 0.5 + 0.01 * cycles as f64]]);
            cycles += 1;
        }
        assert_eq!(cycles, 3);
    }

    #[test]
    fn stopping_by_virtual_time() {
        let p = SyntheticFn::ackley(3);
        let budget = Budget {
            stopping: Stopping::VirtualTime(25.0),
            ..Budget::cycles(0, 1)
        }
        .with_initial_samples(6);
        let mut e = Engine::builder(&p)
            .budget(budget)
            .config(AlgoConfig::test_profile())
            .seed(1)
            .algorithm("t")
            .build()
            .unwrap();
        let mut cycles = 0;
        while e.should_continue() {
            e.fit_model();
            e.commit_batch(vec![vec![0.1 * cycles as f64, 0.5, 0.5]]);
            cycles += 1;
        }
        // Each cycle costs 1 (fit) + 10.55 (sim) ≈ 11.55 → 3 cycles pass
        // the 25 s mark (stop checked before the cycle).
        assert_eq!(cycles, 3);
    }

    #[test]
    fn sanitize_replaces_duplicates() {
        let p = SyntheticFn::ackley(3);
        let mut e = engine_for_test(&p, 2);
        let existing = e.data().0.row(0).to_vec();
        let mut batch = vec![existing.clone(), existing.clone()];
        e.sanitize_batch(&mut batch);
        assert!(!close(&batch[0], &existing));
        assert!(!close(&batch[1], &existing));
        assert!(!close(&batch[0], &batch[1]));
    }

    #[test]
    fn faulty_run_imputes_and_counts() {
        use pbo_problems::fault::{silence_injected_panics, FaultPlan, FaultyProblem};
        silence_injected_panics();
        let inner = SyntheticFn::ackley(3);
        let plan = FaultPlan::uniform(21, 0.3);
        let p = FaultyProblem::new(&inner, plan);
        let budget = Budget::cycles(3, 2).with_initial_samples(8);
        let mut e = Engine::builder(&p)
            .budget(budget)
            .config(AlgoConfig::test_profile())
            .seed(42)
            .algorithm("test")
            .build()
            .unwrap();
        while e.should_continue() {
            e.fit_model();
            let c = e.cycle_index() as f64;
            e.commit_batch(vec![vec![0.3, 0.3, 0.2 + 0.1 * c], vec![0.7, 0.2, 0.1 + 0.1 * c]]);
        }
        let r = e.finish();
        let totals = r.fault_totals();
        let log = p.injection_log();
        assert!(totals.any(), "a 30% plan must fire somewhere in 14 evals x attempts");
        assert_eq!(totals.panics, log.panics);
        assert_eq!(totals.nan_quarantined, log.nans);
        assert_eq!(totals.inf_quarantined, log.infs);
        assert_eq!(totals.stragglers, log.straggles);
        // Nothing non-finite may ever reach the dataset.
        assert!(r.y_min.iter().all(|v| v.is_finite()));
        // An imputed point carries the dataset max: it never improves
        // the incumbent, so the best-so-far trace stays clean.
        assert!(r.best_y().is_finite());
    }

    #[test]
    fn straggler_extends_charged_sim_time() {
        use pbo_problems::fault::{FaultPlan, FaultyProblem};
        let inner = SyntheticFn::ackley(3);
        // Pure stragglers: every attempt succeeds but arrives late.
        let plan =
            FaultPlan { p_straggle: 1.0, max_straggle_secs: 20.0, ..FaultPlan::none(5) };
        let p = FaultyProblem::new(&inner, plan);
        let budget = Budget::cycles(1, 2).with_initial_samples(6);
        let mut e = Engine::builder(&p)
            .budget(budget)
            .config(AlgoConfig::test_profile())
            .seed(9)
            .algorithm("test")
            .build()
            .unwrap();
        e.fit_model();
        e.commit_batch(vec![vec![0.3, 0.3, 0.3], vec![0.7, 0.2, 0.9]]);
        let r = e.finish();
        let c = &r.cycles[0];
        // Charged time = max over the two ranks' (10 + delay) + 0.6
        // dispatch: strictly more than the fault-free 10.6, bounded by
        // the 20 s worst-case delay.
        assert!(c.sim_time > 10.6);
        assert!(c.sim_time <= 30.6 + 1e-9);
        assert_eq!(c.faults.stragglers, 2);
        // Lost rank-seconds are the sum of both delays, and must be at
        // least the slowest rank's extra charge.
        let log = p.injection_log();
        // DoE straggles too (untimed but logged); cycle counters only
        // cover the batch.
        assert!(log.straggles >= 8);
        assert!((c.faults.virtual_secs_lost - (c.sim_time - 10.6)) > -1e-9);
    }

    /// Unit-box problem whose evaluation always returns NaN at the
    /// poisoned point and is healthy everywhere else.
    struct PoisonedPoint {
        bounds_lo: Vec<f64>,
        bounds_hi: Vec<f64>,
        poison: Vec<f64>,
    }

    impl pbo_problems::Problem for PoisonedPoint {
        fn name(&self) -> &str {
            "poisoned"
        }
        fn dim(&self) -> usize {
            3
        }
        fn lower(&self) -> &[f64] {
            &self.bounds_lo
        }
        fn upper(&self) -> &[f64] {
            &self.bounds_hi
        }
        fn eval(&self, x: &[f64]) -> f64 {
            if x == self.poison.as_slice() {
                f64::NAN
            } else {
                x.iter().sum()
            }
        }
    }

    #[test]
    fn permanently_failing_point_is_imputed_with_dataset_max() {
        let p = PoisonedPoint {
            bounds_lo: vec![0.0; 3],
            bounds_hi: vec![1.0; 3],
            poison: vec![0.5, 0.5, 0.5],
        };
        let budget = Budget::cycles(1, 2).with_initial_samples(6);
        let sink = Arc::new(Mutex::new(CollectingObserver::new()));
        let mut e = Engine::builder(&p)
            .budget(budget)
            .config(AlgoConfig::test_profile())
            .seed(11)
            .algorithm("test")
            .observer(sink.clone())
            .build()
            .unwrap();
        let liar = e.data().1.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        e.fit_model();
        e.commit_batch(vec![vec![0.5, 0.5, 0.5], vec![0.9, 0.9, 0.9]]);
        let r = e.finish();
        // The healthy companion point (Σx = 2.7) must beat the liar,
        // and the poisoned point must carry the pre-batch dataset max.
        let c = &r.cycles[0];
        assert_eq!(c.faults.imputed, 1);
        assert_eq!(c.faults.nan_quarantined, 3, "initial attempt + 2 retries");
        assert_eq!(c.faults.retries, 2);
        assert_eq!(c.n_evals, 2, "imputed point still enters the dataset");
        assert!(r.y_min.iter().all(|v| v.is_finite()));
        let imputed = r.y_min[r.y_min.len() - 2];
        assert_eq!(imputed, liar.max(2.7));
        // Retries serialized on the failing rank: 3 × 10 s sims plus
        // backoffs 1 + 2 = 33 s rank time vs the healthy rank's 10 s,
        // so the charged cycle time is 33 + 0.6 dispatch.
        assert!((c.sim_time - 33.6).abs() < 1e-9);
        assert!((c.faults.virtual_secs_lost - 23.0).abs() < 1e-9);
        // The poisoned point surfaced as a deterministic fault event in
        // batch input order.
        let events = &sink.lock().unwrap().events;
        let faulted: Vec<&Event> =
            events.iter().filter(|e| e.name() == "point_faulted").collect();
        assert_eq!(faulted.len(), 1);
        match faulted[0] {
            Event::PointFaulted { index, attempts, recovered, .. } => {
                assert_eq!(*index, 0);
                assert_eq!(*attempts, 3);
                assert!(!recovered);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn best_tracking() {
        let p = SyntheticFn::ackley(3);
        let mut e = engine_for_test(&p, 1);
        let before = e.best_min();
        e.fit_model();
        // Commit the known global minimizer (in unit coords: 0 maps to
        // lower bound −5 … so unit for x=0 is 1/3).
        e.commit_batch(vec![vec![1.0 / 3.0; 3]]);
        assert!(e.best_min() < before);
        assert!(e.best_min() < 1e-6);
    }
}
