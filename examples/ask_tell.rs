//! Ask/tell optimization as a service: start a `pbo-server` daemon
//! in-process, drive a session over TCP with an explicit
//! ask → evaluate → tell loop, crash-and-resume it mid-run, and verify
//! the final record is byte-identical to a plain in-process run.
//!
//! ```text
//! cargo run --release --example ask_tell
//! ```
//!
//! The same loop works against a standalone daemon
//! (`pbo-server serve --addr 127.0.0.1:7341 --dir pbo-sessions`) from
//! any process that speaks newline-delimited JSON; `Client` is just a
//! convenience wrapper over that protocol.

use pbo::core::algorithms::run_algorithm_observed;
use pbo::core::budget::Budget;
use pbo::core::observe::NullObserver;
use pbo::core::session::{ProblemSpec, SessionConfig, SessionProfile};
use pbo::prelude::AlgorithmKind;
use pbo::problems::{Problem, SyntheticFn};
use pbo_server::client::Client;
use pbo_server::registry::Registry;
use pbo_server::server::Server;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The daemon holds the optimizer; the client holds the simulator.
    // Sessions checkpoint to disk after every state transition, so a
    // killed daemon restarts into exactly the sessions it acknowledged.
    let dir = std::env::temp_dir().join(format!("pbo_ask_tell_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let server = Server::bind(Arc::new(Registry::open(&dir)?), "127.0.0.1:0")?;
    let addr = server.local_addr();
    let mut handle = Some(server.spawn());
    println!("daemon listening on {addr}, sessions in {}", dir.display());

    // The client side: the problem stays here. The server only ever
    // sees its bounds and orientation — this is how a licensed or
    // air-gapped simulator joins the optimization.
    let problem = SyntheticFn::ackley(3);
    let cfg = SessionConfig {
        algorithm: AlgorithmKind::KbQEgo,
        problem: ProblemSpec::of(&problem),
        budget: Budget::cycles(5, 2).with_initial_samples(6),
        profile: SessionProfile::Test,
        seed: 42,
    };

    let mut client = Client::connect(addr)?;
    let (created, _) = client.create("demo", &cfg)?;
    println!("session 'demo' created: {created}");

    // The ask/tell loop, spelled out: ask for the next batch, evaluate
    // it locally, tell the values back. The first ask is the initial
    // design; each later ask is one optimization cycle's batch.
    let mut tells = 0;
    let mut done = false;
    while !done {
        let (turn, points) = client.ask("demo")?;
        let values: Vec<f64> = points.iter().map(|x| problem.eval(x)).collect();
        done = client.tell("demo", turn, &values)?;
        tells += 1;

        if tells == 2 {
            // Crash drill: stop the daemon cold after the first cycle
            // and restart it over the same directory. The session
            // resumes from its checkpoint — same turn, same trajectory.
            client.shutdown()?;
            if let Some(h) = handle.take() {
                h.join()?;
            }
            let server = Server::bind(Arc::new(Registry::open(&dir)?), "127.0.0.1:0")?;
            let addr = server.local_addr();
            handle = Some(server.spawn());
            client = Client::connect(addr)?;
            let (recreated, turn) = client.create("demo", &cfg)?;
            println!("daemon restarted; re-attach created={recreated}, resumed at turn {turn}");
        }
    }
    println!("session finished after {tells} tells");

    // The served trajectory is bit-identical to running the same
    // config in-process — the record lines match byte for byte.
    let served = client.record("demo")?;
    let local = run_algorithm_observed(
        cfg.algorithm,
        &problem,
        &cfg.budget,
        cfg.profile.algo_config(),
        cfg.seed,
        NullObserver,
    )?
    .to_json_line();
    assert_eq!(served, local, "served record must equal the in-process record");
    println!("served record == in-process record ({} bytes)", served.len());

    client.shutdown()?;
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
