//! Uncertainty scenarios: price noise, water inflows, groundwater bias
//! and reserve activations.
//!
//! The expected profit is a scenario average with **common random
//! numbers**: a [`ScenarioSet`] is generated once per simulator instance
//! from a seed, so the objective is a deterministic function of the
//! decision vector — the same construction that lets the paper rerun
//! all five optimizers against identical market days.

use crate::market::{DayAheadMarket, ReserveMarket};
use crate::STEPS;
use pbo_sampling::{normal, SeedStream};
use rand::Rng;

/// One realisation of the uncertain market/hydrology day.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Quarter-hourly energy prices \[EUR/MWh\].
    pub prices: Vec<f64>,
    /// Natural inflow into the upper basin \[m³/s\] (rain/rivulet).
    pub inflow_upper: f64,
    /// Shift of the surrounding water-table elevation \[m\].
    pub groundwater_bias: f64,
    /// Per-quarter reserve activation fraction in `[0, 1]` (0 = no
    /// event). The plant must deliver `fraction × offer` extra MW.
    pub activations: Vec<f64>,
}

/// A fixed set of scenarios (common random numbers).
#[derive(Debug, Clone)]
pub struct ScenarioSet {
    scenarios: Vec<Scenario>,
}

impl ScenarioSet {
    /// Generate `n` scenarios from a master seed. Price noise is a
    /// mean-reverting (AR(1)) multiplicative log process with ~12%
    /// stationary deviation; activations are Bernoulli events with a
    /// uniform activation depth.
    pub fn generate(
        n: usize,
        market: &DayAheadMarket,
        reserve: &ReserveMarket,
        seed: u64,
    ) -> Self {
        let root = SeedStream::new(seed);
        let scenarios = (0..n)
            .map(|s| {
                let mut stream = root.fork(s as u64 + 1);
                let mut rng = stream.rng();
                let phi: f64 = 0.85;
                let sigma = 0.12 * (1.0 - phi * phi).sqrt();
                let mut e = 0.12 * normal::sample(&mut rng);
                let prices: Vec<f64> = (0..STEPS)
                    .map(|t| {
                        e = phi * e + sigma * normal::sample(&mut rng);
                        (market.price(t) * e.exp()).max(1.0)
                    })
                    .collect();
                let activations: Vec<f64> = (0..STEPS)
                    .map(|_| {
                        if rng.gen::<f64>() < reserve.activation_prob {
                            rng.gen_range(0.3..1.0)
                        } else {
                            0.0
                        }
                    })
                    .collect();
                Scenario {
                    prices,
                    inflow_upper: rng.gen_range(0.0..0.12),
                    groundwater_bias: 2.5 * normal::sample(&mut rng),
                    activations,
                }
            })
            .collect();
        ScenarioSet { scenarios }
    }

    /// The scenarios.
    pub fn iter(&self) -> impl Iterator<Item = &Scenario> {
        self.scenarios.iter()
    }

    /// Number of scenarios.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// True when empty (never, for a generated set with `n >= 1`).
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(n: usize, seed: u64) -> ScenarioSet {
        ScenarioSet::generate(n, &DayAheadMarket::default(), &ReserveMarket::default(), seed)
    }

    #[test]
    fn deterministic_per_seed() {
        let a = set(4, 9);
        let b = set(4, 9);
        for (sa, sb) in a.iter().zip(b.iter()) {
            assert_eq!(sa.prices, sb.prices);
            assert_eq!(sa.activations, sb.activations);
        }
        let c = set(4, 10);
        assert_ne!(
            a.iter().next().unwrap().prices,
            c.iter().next().unwrap().prices
        );
    }

    #[test]
    fn prices_stay_positive_and_near_base() {
        let s = set(16, 3);
        let market = DayAheadMarket::default();
        for sc in s.iter() {
            for (t, p) in sc.prices.iter().enumerate() {
                assert!(*p > 0.0);
                assert!(*p < 4.0 * market.price(t) + 50.0, "step {t}: {p}");
            }
        }
    }

    #[test]
    fn activation_frequency_matches_probability() {
        let s = set(64, 5);
        let total: usize = s
            .iter()
            .map(|sc| sc.activations.iter().filter(|a| **a > 0.0).count())
            .sum();
        let rate = total as f64 / (64.0 * STEPS as f64);
        assert!((rate - 0.06).abs() < 0.015, "rate {rate}");
    }

    #[test]
    fn activation_depths_in_range() {
        let s = set(8, 6);
        for sc in s.iter() {
            for &a in &sc.activations {
                assert!(a == 0.0 || (0.3..1.0).contains(&a));
            }
        }
    }
}
