//! Observability: trace a seeded run to a JSONL file, validate and
//! reconcile the trace against the run record, and print the live
//! metrics a `MetricsObserver` aggregated along the way.
//!
//! ```text
//! cargo run --release --example observability
//! ```
//!
//! Exits non-zero if any trace line fails validation or the event
//! stream disagrees with the `RunRecord` — `scripts/ci.sh` runs this
//! binary as the trace smoke test.

use pbo::core::observe::jsonl::validate_line;
use pbo::prelude::*;
use std::sync::Arc;

fn main() {
    let problem = SyntheticFn::rosenbrock(6);
    let cfg = RunConfig::cycles(8, 4).seed(42);

    let path = std::env::temp_dir().join(format!("pbo_trace_{}.jsonl", std::process::id()));
    let trace = JsonlTraceWriter::create(&path).expect("create trace file");
    let registry = Arc::new(MetricsRegistry::new());
    let observer = FanoutObserver::new()
        .with(trace)
        .with(MetricsObserver::new(registry.clone()));

    println!("tracing mic-q-ego on {} to {}", problem.name(), path.display());
    let record = pbo::run_observed(AlgorithmKind::MicQEgo, &problem, cfg, observer)
        .expect("valid configuration");

    // Every line of the trace must be strict single-line JSON naming a
    // known event.
    let text = std::fs::read_to_string(&path).expect("read trace back");
    let mut lines = 0usize;
    let mut batches = 0usize;
    let mut evals = 0usize;
    for line in text.lines() {
        let name = match validate_line(line) {
            Ok(name) => name,
            Err(e) => {
                eprintln!("invalid trace line: {e}\n  {line}");
                std::process::exit(1);
            }
        };
        lines += 1;
        match name.as_str() {
            "batch_evaluated" => batches += 1,
            "design_evaluated" | "run_finished" => evals += 1,
            _ => {}
        }
    }
    println!("trace: {lines} lines, all valid");

    // The trace must reconcile with the record: one batch_evaluated per
    // cycle, and exactly one design_evaluated + one run_finished.
    if batches != record.n_cycles() || evals != 2 {
        eprintln!(
            "trace does not reconcile: {batches} batch lines vs {} cycles",
            record.n_cycles()
        );
        std::process::exit(1);
    }
    println!(
        "reconciled: {} cycles, {} simulations, best {:.4}",
        record.n_cycles(),
        record.n_simulations(),
        record.best_y()
    );

    // The metrics registry aggregated the same run, lock-free.
    let snap = registry.snapshot();
    println!("metrics:");
    for (name, v) in &snap.counters {
        println!("  counter   {name:<32} {v}");
    }
    for (name, v) in &snap.gauges {
        println!("  gauge     {name:<32} {v:.4}");
    }
    for (name, count, sum, _) in &snap.histograms {
        println!("  histogram {name:<32} n={count} sum={sum:.2}s");
    }
    if snap.counter("engine.cycles") != record.n_cycles() as u64 {
        eprintln!("metrics do not reconcile with the run record");
        std::process::exit(1);
    }

    std::fs::remove_file(&path).ok();
    println!("ok");
}
