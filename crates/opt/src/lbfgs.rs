//! Projected-gradient L-BFGS for box-constrained smooth minimization.
//!
//! This is the workhorse behind both hyperparameter fitting (maximizing
//! the GP marginal likelihood over log-parameters) and acquisition
//! optimization (BoTorch uses scipy's L-BFGS-B for the same role). The
//! implementation is the practical projected variant: two-loop-recursion
//! search directions, gradient projection at active bounds, and an
//! Armijo backtracking line search along the projected path. It is not
//! the full Byrd–Lu–Nocedal–Zhu L-BFGS-B (no generalized Cauchy point),
//! which costs a few extra iterations near heavily active bounds but is
//! simpler and ample for d ≤ ~200 acquisition landscapes.

use crate::{Bounds, GradObjective, OptResult};
use pbo_linalg::vec_ops::{dot, norm_inf};
use std::collections::VecDeque;

/// Tunables for [`minimize`]. `Default` matches scipy's L-BFGS-B
/// defaults where they carry over.
#[derive(Debug, Clone)]
pub struct LbfgsConfig {
    /// History pairs kept for the two-loop recursion.
    pub memory: usize,
    /// Maximum outer iterations.
    pub max_iters: usize,
    /// Convergence threshold on the projected-gradient infinity norm.
    pub grad_tol: f64,
    /// Convergence threshold on relative objective decrease.
    pub f_tol: f64,
    /// Wolfe sufficient-decrease constant (`c1`).
    pub wolfe_c1: f64,
    /// Wolfe curvature constant (`c2`).
    pub wolfe_c2: f64,
    /// Maximum line-search function evaluations per iteration.
    pub max_ls: usize,
}

impl Default for LbfgsConfig {
    fn default() -> Self {
        LbfgsConfig {
            memory: 8,
            max_iters: 100,
            grad_tol: 1e-6,
            f_tol: 1e-12,
            wolfe_c1: 1e-4,
            wolfe_c2: 0.9,
            max_ls: 25,
        }
    }
}

/// Zero the gradient components that push out of the box at an active
/// bound; the result is the projected gradient whose norm is the
/// first-order optimality measure for box constraints.
fn project_gradient(g: &[f64], x: &[f64], b: &Bounds) -> Vec<f64> {
    let eps = 1e-12;
    let mut pg = g.to_vec();
    for i in 0..x.len() {
        let at_lo = x[i] <= b.lo()[i] + eps * (1.0 + b.lo()[i].abs());
        let at_hi = x[i] >= b.hi()[i] - eps * (1.0 + b.hi()[i].abs());
        if (at_lo && pg[i] > 0.0) || (at_hi && pg[i] < 0.0) {
            pg[i] = 0.0;
        }
    }
    pg
}

/// Two-loop recursion producing `-H g` for the current curvature history.
fn two_loop(history: &VecDeque<(Vec<f64>, Vec<f64>, f64)>, g: &[f64]) -> Vec<f64> {
    let mut q = g.to_vec();
    let mut alphas = Vec::with_capacity(history.len());
    for (s, y, rho) in history.iter().rev() {
        let a = rho * dot(s, &q);
        pbo_linalg::vec_ops::axpy(-a, y, &mut q);
        alphas.push(a);
    }
    // Initial Hessian scaling gamma = s'y / y'y of the newest pair.
    if let Some((s, y, _)) = history.back() {
        let gamma = dot(s, y) / dot(y, y).max(1e-300);
        pbo_linalg::vec_ops::scale(gamma.max(1e-12), &mut q);
    }
    for ((s, y, rho), a) in history.iter().zip(alphas.into_iter().rev()) {
        let beta = rho * dot(y, &q);
        pbo_linalg::vec_ops::axpy(a - beta, s, &mut q);
    }
    pbo_linalg::vec_ops::scale(-1.0, &mut q);
    q
}

/// One evaluation along the projected path `x(a) = clamp(x + a d)`.
struct LsPoint {
    alpha: f64,
    x: Vec<f64>,
    f: f64,
    g: Vec<f64>,
    /// Directional derivative `g(x(a)) . d` (the projected-path
    /// approximation; exact while no new bound activates).
    dphi: f64,
}

/// Strong-Wolfe line search (Nocedal & Wright, Algs. 3.5/3.6) along the
/// projected path. Returns `None` when no acceptable step exists within
/// the evaluation budget.
#[allow(clippy::too_many_arguments)]
fn wolfe_search<O: GradObjective + ?Sized>(
    obj: &O,
    bounds: &Bounds,
    x: &[f64],
    f0: f64,
    d: &[f64],
    dphi0: f64,
    cfg: &LbfgsConfig,
    evals: &mut usize,
) -> Option<LsPoint> {
    let probe = |alpha: f64, evals: &mut usize| -> LsPoint {
        let mut xa: Vec<f64> = x.iter().zip(d).map(|(xi, di)| xi + alpha * di).collect();
        bounds.clamp(&mut xa);
        let (f, g) = obj.value_grad(&xa);
        *evals += 1;
        let dphi = dot(&g, d);
        LsPoint { alpha, x: xa, f, g, dphi }
    };
    let armijo = |p: &LsPoint| p.f <= f0 + cfg.wolfe_c1 * p.alpha * dphi0;
    let curvature = |p: &LsPoint| p.dphi.abs() <= -cfg.wolfe_c2 * dphi0;

    // Bracketing phase.
    let alpha_max = 1e6;
    let mut prev_alpha = 0.0;
    let mut prev_f = f0;
    let mut alpha = 1.0;
    let mut lo: Option<LsPoint> = None;
    let mut hi: Option<LsPoint> = None;
    let mut used = 0usize;
    while used < cfg.max_ls {
        let p = probe(alpha, evals);
        used += 1;
        if !p.f.is_finite() {
            // Step into NaN-land: treat as too long, bracket below.
            hi = Some(p);
            lo = Some(LsPoint { alpha: prev_alpha, x: x.to_vec(), f: prev_f, g: vec![], dphi: dphi0 });
            break;
        }
        if !armijo(&p) || (used > 1 && p.f >= prev_f) {
            hi = Some(p);
            break;
        }
        if curvature(&p) {
            return Some(p);
        }
        if p.dphi >= 0.0 {
            hi = Some(p);
            break;
        }
        prev_alpha = alpha;
        prev_f = p.f;
        alpha = (2.0 * alpha).min(alpha_max);
        if alpha >= alpha_max {
            return Some(p);
        }
    }
    // Zoom phase: bisection on [lo, hi] (by alpha).
    let mut a_lo = lo.map_or(prev_alpha, |p| p.alpha);
    let mut f_lo = prev_f;
    let mut a_hi = hi.map_or(alpha, |p| p.alpha);
    let mut best: Option<LsPoint> = None;
    while used < cfg.max_ls {
        let a = 0.5 * (a_lo + a_hi);
        if (a_hi - a_lo).abs() < 1e-14 * (1.0 + a_lo.abs()) {
            break;
        }
        let p = probe(a, evals);
        used += 1;
        if !p.f.is_finite() || !armijo(&p) || p.f >= f_lo {
            a_hi = a;
            continue;
        }
        if curvature(&p) {
            return Some(p);
        }
        if p.dphi * (a_hi - a_lo) >= 0.0 {
            a_hi = a_lo;
        }
        a_lo = a;
        f_lo = p.f;
        best = Some(p);
    }
    // Accept the best Armijo point found even without the curvature
    // condition (better a short step than no step).
    best.filter(|p| p.f < f0)
}

/// Minimize `obj` over the box `bounds` starting from `x0`.
///
/// Generic over the objective (rather than `&dyn GradObjective`) so the
/// multistart driver can hand in `?Sized` trait objects and concrete
/// acquisition objectives without trait upcasting.
pub fn minimize<O: GradObjective + ?Sized>(
    obj: &O,
    bounds: &Bounds,
    x0: &[f64],
    cfg: &LbfgsConfig,
) -> OptResult {
    assert_eq!(x0.len(), bounds.dim(), "start point dimension mismatch");
    let mut x = x0.to_vec();
    bounds.clamp(&mut x);
    let (mut f, mut g) = obj.value_grad(&x);
    let mut evals = 1;
    let mut history: VecDeque<(Vec<f64>, Vec<f64>, f64)> = VecDeque::new();
    let mut converged = false;
    let mut iters = 0;

    if !f.is_finite() {
        return OptResult { x, value: f, evals, iters, converged: false, restart_shortfall: 0 };
    }

    for it in 0..cfg.max_iters {
        iters = it + 1;
        let pg = project_gradient(&g, &x, bounds);
        if norm_inf(&pg) < cfg.grad_tol {
            converged = true;
            break;
        }
        // Search direction from curvature history, projected onto the
        // inactive set; fall back to steepest descent when it fails to
        // be a descent direction (can happen right after a bound hit).
        let mut d = two_loop(&history, &pg);
        for i in 0..d.len() {
            if pg[i] == 0.0 {
                d[i] = 0.0;
            }
        }
        let mut dphi0 = dot(&d, &g);
        if dphi0 >= 0.0 || d.iter().any(|v| !v.is_finite()) {
            d = pg.iter().map(|v| -v).collect();
            history.clear();
            dphi0 = dot(&d, &g);
            if dphi0 >= 0.0 {
                converged = true; // projected gradient direction is null
                break;
            }
        }

        let Some(p) = wolfe_search(obj, bounds, &x, f, &d, dphi0, cfg, &mut evals) else {
            // No acceptable step: declare convergence if the projected
            // gradient is already small-ish, else give up.
            converged = norm_inf(&pg) < cfg.grad_tol * 100.0;
            break;
        };

        let s: Vec<f64> = p.x.iter().zip(&x).map(|(a, b)| a - b).collect();
        let y: Vec<f64> = p.g.iter().zip(&g).map(|(a, b)| a - b).collect();
        let sy = dot(&s, &y);
        if sy > 1e-10 * pbo_linalg::vec_ops::norm2(&s) * pbo_linalg::vec_ops::norm2(&y) {
            if history.len() == cfg.memory {
                history.pop_front();
            }
            history.push_back((s, y, 1.0 / sy));
        }

        let f_prev = f;
        x = p.x;
        f = p.f;
        g = p.g;
        if (f_prev - f).abs() <= cfg.f_tol * (1.0 + f.abs()) {
            converged = true;
            break;
        }
    }

    OptResult { x, value: f, evals, iters, converged, restart_shortfall: 0 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FnGradObjective;

    fn quadratic(dim: usize) -> impl GradObjective {
        // f(x) = sum (i+1) * (x_i - 0.3 i)^2, minimum at x_i = 0.3 i.
        FnGradObjective::new(
            dim,
            move |x: &[f64]| {
                x.iter()
                    .enumerate()
                    .map(|(i, v)| (i + 1) as f64 * (v - 0.3 * i as f64).powi(2))
                    .sum()
            },
            move |x: &[f64]| {
                let f = x
                    .iter()
                    .enumerate()
                    .map(|(i, v)| (i + 1) as f64 * (v - 0.3 * i as f64).powi(2))
                    .sum();
                let g = x
                    .iter()
                    .enumerate()
                    .map(|(i, v)| 2.0 * (i + 1) as f64 * (v - 0.3 * i as f64))
                    .collect();
                (f, g)
            },
        )
    }

    #[test]
    fn solves_unconstrained_quadratic() {
        let obj = quadratic(5);
        let b = Bounds::cube(5, -10.0, 10.0);
        let r = minimize(&obj, &b, &[5.0; 5], &LbfgsConfig::default());
        assert!(r.converged);
        for (i, v) in r.x.iter().enumerate() {
            assert!((v - 0.3 * i as f64).abs() < 1e-4, "x[{i}] = {v}");
        }
    }

    #[test]
    fn respects_active_bounds() {
        // Minimum of (x-5)^2 over [0, 1] is at x = 1.
        let obj = FnGradObjective::new(
            1,
            |x: &[f64]| (x[0] - 5.0).powi(2),
            |x: &[f64]| ((x[0] - 5.0).powi(2), vec![2.0 * (x[0] - 5.0)]),
        );
        let b = Bounds::cube(1, 0.0, 1.0);
        let r = minimize(&obj, &b, &[0.2], &LbfgsConfig::default());
        assert!((r.x[0] - 1.0).abs() < 1e-9);
        assert!(r.converged);
    }

    #[test]
    fn rosenbrock_2d_converges() {
        let rb = |x: &[f64]| {
            100.0 * (x[1] - x[0] * x[0]).powi(2) + (1.0 - x[0]).powi(2)
        };
        let obj = FnGradObjective::new(2, rb, move |x: &[f64]| {
            let g = vec![
                -400.0 * x[0] * (x[1] - x[0] * x[0]) - 2.0 * (1.0 - x[0]),
                200.0 * (x[1] - x[0] * x[0]),
            ];
            (rb(x), g)
        });
        let b = Bounds::cube(2, -5.0, 10.0);
        let cfg = LbfgsConfig { max_iters: 500, ..LbfgsConfig::default() };
        let r = minimize(&obj, &b, &[-1.2, 1.0], &cfg);
        assert!((r.x[0] - 1.0).abs() < 1e-3 && (r.x[1] - 1.0).abs() < 1e-3,
                "got {:?} after {} iters", r.x, r.iters);
    }

    #[test]
    fn handles_nonfinite_start_gracefully() {
        let obj = FnGradObjective::new(
            1,
            |_: &[f64]| f64::NAN,
            |_: &[f64]| (f64::NAN, vec![f64::NAN]),
        );
        let b = Bounds::unit(1);
        let r = minimize(&obj, &b, &[0.5], &LbfgsConfig::default());
        assert!(!r.converged);
        assert_eq!(r.evals, 1);
    }

    #[test]
    fn clamps_out_of_box_start() {
        let obj = quadratic(2);
        let b = Bounds::unit(2);
        let r = minimize(&obj, &b, &[100.0, -100.0], &LbfgsConfig::default());
        assert!(b.contains(&r.x));
    }
}
