//! Algorithm-agnostic cycle stepping: every algorithm's per-cycle
//! batch construction, factored out of its `drive` loop so a cycle can
//! *suspend at the evaluate boundary*.
//!
//! [`BatchStepper::propose`] runs the pre-evaluate half of one cycle
//! (fit, acquisition, sanitization) and returns the unit-cube batch;
//! the caller then either evaluates in-process
//! ([`crate::engine::Engine::commit_batch`]) or ships the points to a
//! remote evaluator and later absorbs the values
//! ([`crate::engine::Engine::commit_report`]);
//! [`BatchStepper::after_commit`] runs the post-evaluate half (trust
//! region feedback). [`drive_stepper`] composes the three into the
//! classic in-process loop, so the stepper IS the reference trajectory:
//! ask/tell sessions reproduce `pbo::run` bit-for-bit because both
//! paths execute this exact code.
//!
//! Cross-cycle algorithm state (the BSP partition, the trust region)
//! lives in the stepper variants — everything else an algorithm needs
//! is rederived from the engine each cycle, which is what makes a
//! session resumable by replaying its journal of told values.

use super::{acq_multistart, qei_multistart, AlgorithmKind};
use crate::engine::Engine;
use crate::partition::BspTree;
use crate::record::RunRecord;
use crate::trust_region::{TrustRegion, TrustRegionConfig};
use pbo_acq::mc::{optimize_qei, QExpectedImprovement};
use pbo_acq::single::{optimize_single, ExpectedImprovement};
use pbo_gp::Surrogate;
use rand::Rng;

/// Per-algorithm cycle stepper. Holds exactly the state that survives
/// across cycles; create one per run with [`BatchStepper::new`].
pub enum BatchStepper {
    /// Kriging-Believer q-EGO (stateless across cycles).
    KbQEgo,
    /// Multi-infill-criteria q-EGO (stateless across cycles).
    MicQEgo,
    /// Monte-Carlo q-EGO (stateless across cycles).
    McQEgo,
    /// BSP-EGO: the partition tree evolves every cycle.
    BspEgo {
        /// Binary space partition over the unit cube.
        tree: BspTree,
    },
    /// TuRBO: the trust region reacts to per-cycle improvement.
    Turbo {
        /// Trust-region state machine.
        tr: TrustRegion,
        /// Incumbent before the current cycle's batch, for the
        /// improvement test in [`BatchStepper::after_commit`].
        f_best_before: f64,
    },
    /// mic-TuRBO: multi-infill batch inside a trust region.
    MicTurbo {
        /// Trust-region state machine.
        tr: TrustRegion,
        /// Incumbent before the current cycle's batch.
        f_best_before: f64,
    },
    /// Uniform random search (stateless across cycles).
    Random,
    /// Thompson-sampling batches (stateless across cycles).
    Thompson,
    /// GP-UCB-PE: UCB leader + variance-greedy pure-exploration
    /// fillers (stateless across cycles).
    GpUcbPe,
    /// Adaptive-q hybrid: the batch built by [`BatchStepper::propose_q`]
    /// is cached here so the size decision and the proposal are one
    /// computation — whichever of the two entry points runs first.
    HybridQ {
        /// The batch planned by `propose_q`, consumed by `propose`.
        planned: Option<Vec<Vec<f64>>>,
    },
}

impl BatchStepper {
    /// Fresh per-run stepper state for `kind`, derived from the ready
    /// engine (the BSP cell count and bounds depend on q and d).
    pub fn new(kind: AlgorithmKind, e: &Engine) -> BatchStepper {
        match kind {
            AlgorithmKind::KbQEgo => BatchStepper::KbQEgo,
            AlgorithmKind::MicQEgo => BatchStepper::MicQEgo,
            AlgorithmKind::McQEgo => BatchStepper::McQEgo,
            AlgorithmKind::BspEgo => {
                let n_cells = (e.cfg().acq.bsp_cells_factor * e.q()).max(2);
                BatchStepper::BspEgo { tree: BspTree::new(e.unit_bounds(), n_cells) }
            }
            AlgorithmKind::Turbo => BatchStepper::Turbo {
                tr: TrustRegion::new(TrustRegionConfig::default()),
                f_best_before: f64::INFINITY,
            },
            AlgorithmKind::RandomSearch => BatchStepper::Random,
            AlgorithmKind::ThompsonSampling => BatchStepper::Thompson,
            AlgorithmKind::MicTurbo => BatchStepper::MicTurbo {
                tr: TrustRegion::new(TrustRegionConfig::default()),
                f_best_before: f64::INFINITY,
            },
            AlgorithmKind::GpUcbPe => BatchStepper::GpUcbPe,
            AlgorithmKind::HybridQ => BatchStepper::HybridQ { planned: None },
        }
    }

    /// The batch size this cycle's proposal will have. Fixed-q
    /// algorithms (all eight incumbents and GP-UCB-PE) answer the
    /// configured q without touching the engine; the adaptive-q hybrid
    /// runs its acquisition process here — fit, leader EI, fantasy
    /// growth loop — caches the resulting batch, and answers its
    /// length, so a following [`BatchStepper::propose`] is free and
    /// the size decision is made exactly once per cycle whichever
    /// entry point runs first.
    pub fn propose_q(&mut self, e: &mut Engine) -> usize {
        match self {
            BatchStepper::HybridQ { planned } => {
                if planned.is_none() {
                    *planned = Some(hybrid_propose(e));
                }
                planned.as_ref().map_or(0, Vec::len)
            }
            _ => e.q(),
        }
    }

    /// Run the pre-evaluate half of one cycle: open the cycle (fitting
    /// the surrogate for every algorithm but random search), build the
    /// batch through the algorithm's acquisition process — charged to
    /// the acquisition clock exactly as the original drive loops did —
    /// and sanitize duplicates (again except random search, which never
    /// did). Returns the unit-cube batch to evaluate.
    pub fn propose(&mut self, e: &mut Engine) -> Vec<Vec<f64>> {
        match self {
            BatchStepper::KbQEgo => {
                e.fit_model();
                let q = e.q();
                let bounds = e.unit_bounds();
                let cfg = e.cfg().clone();
                let acq_seed = e.seeds().fork(0xACC).next_seed();
                let gp = e.model().clone();
                let mut batch = e.charge_acquisition(1, || {
                    super::kb_qego::kb_batch(&gp, &bounds, q, &cfg, acq_seed)
                });
                e.sanitize_batch(&mut batch);
                batch
            }
            BatchStepper::MicQEgo => {
                e.fit_model();
                let q = e.q();
                let bounds = e.unit_bounds();
                let cfg = e.cfg().clone();
                let acq_seed = e.seeds().fork(0xACC).next_seed();
                let gp = e.model().clone();
                let mut batch = e.charge_acquisition(1, || {
                    super::mic_qego::mic_batch(&gp, &bounds, q, &cfg, acq_seed)
                });
                e.sanitize_batch(&mut batch);
                batch
            }
            BatchStepper::McQEgo => {
                e.fit_model();
                let q = e.q();
                let bounds = e.unit_bounds();
                let cfg = e.cfg().clone();
                let acq_seed = e.seeds().fork(0xACC).next_seed();
                let gp = e.model().clone();
                let f_best = gp.best_observed(false);
                let mut batch = e.charge_acquisition(1, || {
                    if q == 1 {
                        // Table 3: all methods use plain EI at q = 1.
                        let ei = ExpectedImprovement { f_best };
                        let ms = acq_multistart(&cfg, acq_seed);
                        let r = optimize_single(&gp, &ei, &bounds, &[], &ms);
                        (vec![r.x], r.restart_shortfall)
                    } else {
                        let qei = QExpectedImprovement::new(
                            f_best,
                            q,
                            cfg.qei.samples,
                            acq_seed ^ 0x5A,
                        );
                        let ms = qei_multistart(&cfg, acq_seed);
                        let out = optimize_qei(&gp, &qei, &bounds, &[], &ms);
                        (out.batch, out.restart_shortfall)
                    }
                });
                e.sanitize_batch(&mut batch);
                batch
            }
            BatchStepper::BspEgo { tree } => {
                e.fit_model();
                let q = e.q();
                let cfg = e.cfg().clone();
                let acq_seed = e.seeds().fork(0xACC).next_seed();
                let gp = e.model().clone();
                let f_best = gp.best_observed(false);
                let leaves = tree.leaves();
                let cells: Vec<pbo_opt::Bounds> =
                    leaves.iter().map(|&l| tree.bounds_of(l).clone()).collect();

                // One local EI maximization per cell, run concurrently;
                // the clock models q workers sharing the 2q
                // sub-problems. The multistart inside each cell is
                // itself parallel-capable, but workers spawned here are
                // marked as inside a parallel region
                // (`pbo_linalg::parallel`), so the nested fan-out
                // degrades to the serial schedule instead of
                // oversubscribing — and stays bit-identical to it by
                // construction.
                let results: Vec<(Vec<f64>, f64, usize)> = e.charge_acquisition(q, || {
                    let per_cell = pbo_linalg::parallel::par_map(cells.len(), 1, |k| {
                        let ei = ExpectedImprovement { f_best };
                        let ms = acq_multistart(&cfg, acq_seed.wrapping_add(k as u64));
                        let r = optimize_single(&gp, &ei, &cells[k], &[], &ms);
                        (r.x, r.value, r.restart_shortfall)
                    });
                    let shortfall = per_cell.iter().map(|(_, _, s)| *s).sum();
                    (per_cell, shortfall)
                });

                // Per-leaf scores drive the partition evolution.
                let scores: Vec<f64> = results.iter().map(|(_, v, _)| *v).collect();

                // Top-q candidates by EI across all cells.
                let mut order: Vec<usize> = (0..results.len()).collect();
                order.sort_by(|&a, &b| results[b].1.total_cmp(&results[a].1));
                let mut batch: Vec<Vec<f64>> =
                    order.iter().take(q).map(|&k| results[k].0.clone()).collect();

                tree.evolve(&leaves, &scores);
                e.sanitize_batch(&mut batch);
                batch
            }
            BatchStepper::Turbo { tr, f_best_before } => {
                e.fit_model();
                let q = e.q();
                let cfg = e.cfg().clone();
                let acq_seed = e.seeds().fork(0xACC).next_seed();
                let gp = e.model().clone();
                let f_best_min = e.best_min();
                *f_best_before = f_best_min;
                let center = e.best_x_unit();
                let region = tr.bounds(&center, &gp.kernel().lengthscales);

                let mut batch = e.charge_acquisition(1, || {
                    if q == 1 {
                        let ei = ExpectedImprovement { f_best: f_best_min };
                        let ms = acq_multistart(&cfg, acq_seed);
                        let r = optimize_single(&gp, &ei, &region, &[], &ms);
                        (vec![r.x], r.restart_shortfall)
                    } else {
                        let qei = QExpectedImprovement::new(
                            f_best_min,
                            q,
                            cfg.qei.samples,
                            acq_seed ^ 0x7B,
                        );
                        let ms = qei_multistart(&cfg, acq_seed);
                        let out = optimize_qei(&gp, &qei, &region, &[], &ms);
                        (out.batch, out.restart_shortfall)
                    }
                });
                e.sanitize_batch(&mut batch);
                batch
            }
            BatchStepper::MicTurbo { tr, f_best_before } => {
                e.fit_model();
                let q = e.q();
                let cfg = e.cfg().clone();
                let acq_seed = e.seeds().fork(0xACC).next_seed();
                let gp = e.model().clone();
                let f_best_min = e.best_min();
                *f_best_before = f_best_min;
                let center = e.best_x_unit();
                let region = tr.bounds(&center, &gp.kernel().lengthscales);

                let mut batch = e.charge_acquisition(1, || {
                    super::mic_qego::mic_batch(&gp, &region, q, &cfg, acq_seed)
                });
                e.sanitize_batch(&mut batch);
                batch
            }
            BatchStepper::Random => {
                e.begin_cycle();
                let q = e.q();
                let d = e.dim();
                // Per-cycle fork: deterministic yet fresh each cycle.
                let cycle = e.cycle_index() as u64;
                let mut rng = e.seeds().fork(0x3A00 + cycle).rng();
                (0..q).map(|_| (0..d).map(|_| rng.gen::<f64>()).collect()).collect()
            }
            BatchStepper::Thompson => {
                e.fit_model();
                let q = e.q();
                let n_cand = e.cfg().acq.thompson_candidates;
                let cycle_tag = 0xACC + e.cycle_index() as u64;
                let acq_seed = e.seeds().fork(cycle_tag).next_seed();
                let gp = e.model().clone();
                // No inner optimization → no restart shortfall to
                // report.
                let mut batch = e.charge_acquisition(1, || {
                    (super::thompson::thompson_batch(&gp, q, n_cand, acq_seed), 0)
                });
                e.sanitize_batch(&mut batch);
                batch
            }
            BatchStepper::GpUcbPe => {
                e.fit_model();
                let q = e.q();
                let bounds = e.unit_bounds();
                let cfg = e.cfg().clone();
                let n_cand = cfg.acq.pe_candidates;
                // Per-cycle fork like Thompson: the Sobol candidate set
                // must be fresh each cycle.
                let cycle_tag = 0xACC + e.cycle_index() as u64;
                let acq_seed = e.seeds().fork(cycle_tag).next_seed();
                let gp = e.model().clone();
                let mut batch = e.charge_acquisition(1, || {
                    super::gp_ucb_pe::gp_ucb_pe_batch(&gp, &bounds, q, n_cand, &cfg, acq_seed)
                });
                e.sanitize_batch(&mut batch);
                batch
            }
            BatchStepper::HybridQ { planned } => {
                planned.take().unwrap_or_else(|| hybrid_propose(e))
            }
        }
    }

    /// Run the post-evaluate half of one cycle: trust-region feedback
    /// for the TuRBO variants, a no-op for everything else. Call after
    /// the proposed batch has been committed.
    pub fn after_commit(&mut self, e: &Engine) {
        match self {
            BatchStepper::Turbo { tr, f_best_before }
            | BatchStepper::MicTurbo { tr, f_best_before } => {
                let improved =
                    e.best_min() < *f_best_before - 1e-12 * (1.0 + f_best_before.abs());
                tr.update(improved);
            }
            _ => {}
        }
    }
}

/// The adaptive-q hybrid's pre-evaluate half, shared by
/// [`BatchStepper::propose_q`] and [`BatchStepper::propose`]: fit,
/// charge the leader-EI + fantasy growth loop to the acquisition clock
/// (the telemetry event reports the batch size the loop actually
/// chose), sanitize.
fn hybrid_propose(e: &mut Engine) -> Vec<Vec<f64>> {
    e.fit_model();
    let q_max = e.q();
    let bounds = e.unit_bounds();
    let cfg = e.cfg().clone();
    let acq_seed = e.seeds().fork(0xACC).next_seed();
    let gp = e.model().clone();
    let mut batch = e.charge_batch_acquisition(1, || {
        super::hybrid_q::hybrid_batch(&gp, &bounds, q_max, &cfg, acq_seed)
    });
    e.sanitize_batch(&mut batch);
    batch
}

/// Drive a prepared engine to budget exhaustion through the stepper —
/// the in-process reference loop every `drive` wrapper and ask/tell
/// session shares.
pub fn drive_stepper(kind: AlgorithmKind, mut e: Engine) -> RunRecord {
    let mut stepper = BatchStepper::new(kind, &e);
    while e.should_continue() {
        let batch = stepper.propose(&mut e);
        e.commit_batch(batch);
        stepper.after_commit(&e);
    }
    e.finish()
}
