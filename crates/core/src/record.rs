//! Run records: everything the bench harness needs to rebuild the
//! paper's tables and figures from a set of optimization runs.

use serde::{Deserialize, Serialize};

/// Per-batch fault bookkeeping from the fault-tolerant executor
/// (`pbo-core::exec::evaluate_batch_ft`) and the engine's degradation
/// policy. All counts are exact and deterministic given the run seed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultCounters {
    /// Worker panics caught and isolated.
    pub panics: u64,
    /// NaN results quarantined before reaching the dataset.
    pub nan_quarantined: u64,
    /// Infinite results quarantined before reaching the dataset.
    pub inf_quarantined: u64,
    /// Evaluations that straggled (returned late in virtual time).
    pub stragglers: u64,
    /// Attempts killed by the per-evaluation virtual timeout.
    pub timeouts: u64,
    /// Re-attempts performed (Σ per-point `attempts − 1`).
    pub retries: u64,
    /// Points that exhausted retries and were imputed (constant-liar
    /// dataset max) before the GP update.
    pub imputed: u64,
    /// Points that exhausted retries and were dropped outright.
    pub dropped: u64,
    /// Virtual rank-seconds consumed beyond the fault-free cost: extra
    /// simulation attempts, backoff waits, straggler delays and timeout
    /// charges, summed over all ranks (the paper's CPU-seconds-lost
    /// view; the charged *wall* time is the max over ranks and lives in
    /// `sim_time`).
    pub virtual_secs_lost: f64,
}

impl FaultCounters {
    /// Accumulate another tally into this one.
    pub fn merge(&mut self, other: &FaultCounters) {
        self.panics += other.panics;
        self.nan_quarantined += other.nan_quarantined;
        self.inf_quarantined += other.inf_quarantined;
        self.stragglers += other.stragglers;
        self.timeouts += other.timeouts;
        self.retries += other.retries;
        self.imputed += other.imputed;
        self.dropped += other.dropped;
        self.virtual_secs_lost += other.virtual_secs_lost;
    }

    /// Total failed attempts (each one either triggered a retry or
    /// exhausted the point).
    pub fn failed_attempts(&self) -> u64 {
        self.panics + self.nan_quarantined + self.inf_quarantined + self.timeouts
    }

    /// True when any fault was observed.
    pub fn any(&self) -> bool {
        self.failed_attempts() + self.stragglers + self.imputed + self.dropped > 0
            || self.virtual_secs_lost > 0.0
    }
}

/// One optimization cycle's bookkeeping.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CycleRecord {
    /// Cycle index (0-based; the initial design is cycle-less).
    pub cycle: usize,
    /// Virtual seconds spent fitting the surrogate this cycle.
    pub fit_time: f64,
    /// Virtual seconds spent in the acquisition process this cycle.
    pub acq_time: f64,
    /// Virtual seconds spent simulating this cycle's batch.
    pub sim_time: f64,
    /// Batch size actually evaluated.
    pub n_evals: usize,
    /// Best objective (minimization orientation) after this cycle.
    pub best_y_min: f64,
    /// Virtual clock reading at the end of the cycle.
    pub clock: f64,
    /// Faults absorbed while evaluating this cycle's batch.
    pub faults: FaultCounters,
}

/// A complete optimization run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunRecord {
    /// Algorithm name.
    pub algorithm: String,
    /// Problem name.
    pub problem: String,
    /// Whether the problem is natively a maximization.
    pub maximize: bool,
    /// Batch size q.
    pub batch_size: usize,
    /// Run seed.
    pub seed: u64,
    /// Size of the initial design.
    pub doe_size: usize,
    /// All observed objective values (minimization orientation), in
    /// evaluation order (DoE first).
    pub y_min: Vec<f64>,
    /// Location of the best observation, in the problem's native
    /// coordinates.
    pub best_x: Vec<f64>,
    /// Per-cycle records.
    pub cycles: Vec<CycleRecord>,
    /// Final virtual clock \[seconds\].
    pub final_clock: f64,
    /// Faults absorbed while evaluating the initial design (untimed,
    /// so not part of any cycle).
    pub doe_faults: FaultCounters,
}

impl RunRecord {
    /// Aggregate fault tally over the whole run (DoE + every cycle).
    pub fn fault_totals(&self) -> FaultCounters {
        let mut total = self.doe_faults;
        for c in &self.cycles {
            total.merge(&c.faults);
        }
        total
    }

    /// Total simulations performed (DoE included).
    pub fn n_simulations(&self) -> usize {
        self.y_min.len()
    }

    /// Simulations performed after the initial design.
    pub fn n_optimization_simulations(&self) -> usize {
        self.y_min.len().saturating_sub(self.doe_size)
    }

    /// Number of optimization cycles completed.
    pub fn n_cycles(&self) -> usize {
        self.cycles.len()
    }

    /// Best objective value in the problem's native orientation.
    pub fn best_y(&self) -> f64 {
        let best_min = self.y_min.iter().copied().fold(f64::INFINITY, f64::min);
        if self.maximize {
            -best_min
        } else {
            best_min
        }
    }

    /// Best-so-far trace per evaluation, native orientation.
    pub fn best_trace(&self) -> Vec<f64> {
        let mut best = f64::INFINITY;
        self.y_min
            .iter()
            .map(|&v| {
                best = best.min(v);
                if self.maximize {
                    -best
                } else {
                    best
                }
            })
            .collect()
    }

    /// Aggregate time split `(fit, acq, sim)` over all cycles \[virtual s\].
    pub fn time_split(&self) -> (f64, f64, f64) {
        let mut f = 0.0;
        let mut a = 0.0;
        let mut s = 0.0;
        for c in &self.cycles {
            f += c.fit_time;
            a += c.acq_time;
            s += c.sim_time;
        }
        (f, a, s)
    }
}

/// Point-wise mean/sd of best-so-far traces truncated to the shortest
/// run — exactly how the paper draws Figs. 3–7 ("curves only display
/// the results for which all data are available").
pub fn mean_sd_trace(records: &[RunRecord]) -> (Vec<f64>, Vec<f64>) {
    let traces: Vec<Vec<f64>> = records.iter().map(|r| r.best_trace()).collect();
    let n = traces.iter().map(|t| t.len()).min().unwrap_or(0);
    let mut mean = Vec::with_capacity(n);
    let mut sd = Vec::with_capacity(n);
    for i in 0..n {
        let col: Vec<f64> = traces.iter().map(|t| t[i]).collect();
        mean.push(pbo_linalg::vec_ops::mean(&col));
        sd.push(pbo_linalg::vec_ops::variance(&col).sqrt());
    }
    (mean, sd)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(maximize: bool, y: Vec<f64>) -> RunRecord {
        RunRecord {
            algorithm: "test".into(),
            problem: "p".into(),
            maximize,
            batch_size: 2,
            seed: 0,
            doe_size: 2,
            best_x: vec![0.0],
            y_min: y,
            cycles: vec![
                CycleRecord {
                    cycle: 0,
                    fit_time: 1.0,
                    acq_time: 2.0,
                    sim_time: 10.0,
                    n_evals: 2,
                    best_y_min: 0.0,
                    clock: 13.0,
                    faults: FaultCounters::default(),
                },
            ],
            final_clock: 13.0,
            doe_faults: FaultCounters::default(),
        }
    }

    #[test]
    fn best_and_trace_minimization() {
        let r = rec(false, vec![5.0, 3.0, 4.0, 1.0]);
        assert_eq!(r.best_y(), 1.0);
        assert_eq!(r.best_trace(), vec![5.0, 3.0, 3.0, 1.0]);
        assert_eq!(r.n_simulations(), 4);
        assert_eq!(r.n_optimization_simulations(), 2);
    }

    #[test]
    fn best_and_trace_maximization() {
        // Stored minimized: y_min = -profit.
        let r = rec(true, vec![-5.0, -3.0, -7.0]);
        assert_eq!(r.best_y(), 7.0);
        assert_eq!(r.best_trace(), vec![5.0, 5.0, 7.0]);
    }

    #[test]
    fn mean_sd_trace_truncates_to_shortest() {
        let a = rec(false, vec![4.0, 2.0, 1.0]);
        let b = rec(false, vec![6.0, 4.0]);
        let (mean, sd) = mean_sd_trace(&[a, b]);
        assert_eq!(mean.len(), 2);
        assert_eq!(mean[0], 5.0);
        assert_eq!(mean[1], 3.0);
        assert!(sd[0] > 0.0);
    }

    #[test]
    fn time_split_sums_cycles() {
        let r = rec(false, vec![1.0, 2.0]);
        assert_eq!(r.time_split(), (1.0, 2.0, 10.0));
    }

    #[test]
    fn fault_totals_merge_doe_and_cycles() {
        let mut r = rec(false, vec![1.0, 2.0]);
        r.doe_faults = FaultCounters { panics: 1, virtual_secs_lost: 10.0, ..FaultCounters::default() };
        r.cycles[0].faults =
            FaultCounters { retries: 3, nan_quarantined: 2, imputed: 1, ..FaultCounters::default() };
        let t = r.fault_totals();
        assert_eq!(t.panics, 1);
        assert_eq!(t.retries, 3);
        assert_eq!(t.nan_quarantined, 2);
        assert_eq!(t.imputed, 1);
        assert_eq!(t.virtual_secs_lost, 10.0);
        assert_eq!(t.failed_attempts(), 3);
        assert!(t.any());
        assert!(!FaultCounters::default().any());
    }
}
