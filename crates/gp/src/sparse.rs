//! Sparse inducing-point GP regression (subset of regressors / FITC).
//!
//! The dense [`crate::gp::GaussianProcess`] costs `O(n³)` to build and
//! `O(n)`–`O(n²)` per prediction, which caps studies at a few thousand
//! observations. This backend approximates the prior with `m ≪ n`
//! *inducing points* `Z ⊂ X` (FITC, Snelson & Ghahramani 2006): with
//! `K_mm = k(Z, Z)`, `K_mn = k(Z, X)` and the Nyström approximation
//! `Q = K_nm K_mm⁻¹ K_mn`, the training covariance is replaced by
//! `Q + Λ`, where `Λ = diag(k(xᵢ,xᵢ) + σ_n² − qᵢᵢ)` keeps the exact
//! marginal variances (subset-of-regressors uses `Λ = σ_n² I`; FITC's
//! heteroskedastic diagonal is strictly better and free here).
//!
//! Everything is stored in the **whitened** parametrization
//! `K_mm = L Lᵀ`, `vᵢ = L⁻¹ k(Z, xᵢ)`:
//!
//! - `B = I + V Λ⁻¹ Vᵀ = L_B L_Bᵀ` (m×m),
//! - posterior mean `μ(x) = m̂ + k_m(x)ᵀ α` with
//!   `α = L⁻ᵀ B⁻¹ (V Λ⁻¹ r)` and `r = y_std − m̂·1`,
//! - posterior variance
//!   `σ²(x) = k(x,x) − uᵀ(I − B⁻¹)u` with `u = L⁻¹ k_m(x)`,
//!
//! so fitting is `O(n m²)` and prediction `O(m)` (mean) / `O(m²)`
//! (variance). The profiled constant trend `m̂` is carried through the
//! Woodbury identity: with `p₁ = V Λ⁻¹ 1`, `p_y = V Λ⁻¹ y_std`,
//! `s₁ = Σ 1/λᵢ`, `s_y = Σ yᵢ/λᵢ`,
//! `1ᵀK⁻¹1 = s₁ − p₁ᵀB⁻¹p₁` and `1ᵀK⁻¹y = s_y − p₁ᵀB⁻¹p_y`, which
//! also makes `O(m³)` appends possible without revisiting old points.
//!
//! **Inducing-point selection** is a deterministic greedy pivoted
//! Cholesky on the training kernel: repeatedly pick the point with the
//! largest residual diagonal (lowest index on ties), append its
//! normalized residual column, and downdate — the classic
//! trace-norm-greedy Nyström rule (Fine & Scheinberg 2001). No `n×n`
//! matrix is ever formed.
//!
//! **Determinism.** The `n×m` cross-kernel assembly, the per-row
//! whitening solves, and the pivoted-Cholesky column updates fan out
//! over [`pbo_linalg::parallel`] in row bands; every row's arithmetic
//! is a fixed serial sequence and band boundaries only decide *which
//! worker* computes a row, never *what* it computes — the same policy
//! as the blocked dense factorization. The `B` accumulation is a
//! row-banded SYRK with a fixed per-element summation order, and the
//! scalar reductions (`p₁`, `p_y`, `s₁`, `s_y`, pivot argmax) are
//! serial. Results are therefore bitwise identical for any thread
//! count (pinned by the determinism suite).

use crate::gp::{banded_sq_colsums, PredictWorkspace, MIN_SCALE};
use crate::kernel::Kernel;
use crate::{GpError, Result};
use pbo_linalg::parallel::for_each_row_chunk;
use pbo_linalg::vec_ops::dot;
use pbo_linalg::{Cholesky, Matrix};

/// Relative residual-diagonal tolerance at which greedy selection stops
/// early (the remaining points are numerically inside the span of the
/// selected ones).
const SELECT_TOL_REL: f64 = 1e-12;

/// Sparse inducing-point GP with constant trend and homoskedastic
/// noise, mirroring the dense [`crate::gp::GaussianProcess`] contract
/// (standardized targets, profiled trend, latent predictive variance on
/// the raw scale).
#[derive(Debug, Clone)]
pub struct SparseGaussianProcess {
    kernel: Kernel,
    noise: f64,
    /// All training inputs (kept for appends and `best_observed`).
    x: Matrix,
    /// Standardized targets.
    y_std: Vec<f64>,
    shift: f64,
    scale: f64,
    /// Inducing inputs (`m_eff × d`, rows of `x` in pivot order).
    z: Matrix,
    /// Cholesky factor of `K_mm` (jitter-stabilised).
    l_mm: Cholesky,
    /// `B = I + V Λ⁻¹ Vᵀ`, kept whole so appends can rank-update it and
    /// refactor in `O(m³)`.
    b_mat: Matrix,
    l_b: Cholesky,
    /// Woodbury accumulators for the profiled trend (see module docs).
    p1: Vec<f64>,
    py: Vec<f64>,
    s1: f64,
    sy: f64,
    /// Profiled constant trend (standardized scale).
    trend: f64,
    /// `α = L⁻ᵀ B⁻¹ (p_y − m̂ p₁)`; posterior mean weights over `z`.
    alpha: Vec<f64>,
}

impl SparseGaussianProcess {
    /// Build a sparse GP on raw data with at most `m` inducing points
    /// selected by greedy pivoted Cholesky. Fails on empty/ragged data
    /// or a kernel of the wrong dimension (same contract as the dense
    /// constructor).
    pub fn new(x: Matrix, y: &[f64], kernel: Kernel, noise: f64, m: usize) -> Result<Self> {
        if x.rows() == 0 {
            return Err(GpError::BadTrainingData("empty training set".into()));
        }
        if x.rows() != y.len() {
            return Err(GpError::BadTrainingData(format!(
                "{} inputs vs {} targets",
                x.rows(),
                y.len()
            )));
        }
        if kernel.dim() != x.cols() {
            return Err(GpError::BadHyperparameters(format!(
                "kernel dim {} vs input dim {}",
                kernel.dim(),
                x.cols()
            )));
        }
        if !y.iter().all(|v| v.is_finite()) {
            return Err(GpError::BadTrainingData("non-finite target".into()));
        }
        let shift = pbo_linalg::vec_ops::mean(y);
        let scale = pbo_linalg::vec_ops::variance(y).sqrt().max(MIN_SCALE);
        let y_std: Vec<f64> = y.iter().map(|v| (v - shift) / scale).collect();
        Self::from_standardized(x, y_std, shift, scale, kernel, noise, m)
    }

    /// Build from already-standardized targets (frozen-standardization
    /// rebuilds, e.g. the engine's dense→sparse hand-over between full
    /// fits).
    pub(crate) fn from_standardized(
        x: Matrix,
        y_std: Vec<f64>,
        shift: f64,
        scale: f64,
        kernel: Kernel,
        noise: f64,
        m: usize,
    ) -> Result<Self> {
        let sel = select_inducing(&kernel, &x, m.clamp(1, x.rows()));
        let mut z = Matrix::zeros(sel.len(), x.cols());
        for (r, &i) in sel.iter().enumerate() {
            z.row_mut(r).copy_from_slice(x.row(i));
        }
        Self::build(x, y_std, shift, scale, kernel, noise, z)
    }

    /// Core whitened build for a fixed inducing set `z`.
    fn build(
        x: Matrix,
        y_std: Vec<f64>,
        shift: f64,
        scale: f64,
        kernel: Kernel,
        noise: f64,
        z: Matrix,
    ) -> Result<Self> {
        let n = x.rows();
        let m = z.rows();
        let kmm = kernel.matrix(&z);
        let l_mm = Cholesky::factor(&kmm)?;
        // Whitened cross block: row i of `v` becomes vᵢ = L⁻¹ k(Z, xᵢ).
        // The assembly is the parallel row-banded kernel path; the
        // per-row forward solves are independent, so they fan out over
        // the same row bands, bitwise identical at any thread count.
        let mut v = kernel.cross_matrix(&x, &z); // n × m
        for_each_row_chunk(v.as_mut_slice(), m, n * m * m, |_i, row| {
            l_mm.solve_lower_in_place(row);
        });
        // FITC diagonal and the linear Woodbury accumulators; serial
        // O(nm), one fixed summation order.
        let pv = kernel.prior_var();
        let lam_floor = noise.max(1e-12);
        let mut p1 = vec![0.0; m];
        let mut py = vec![0.0; m];
        let (mut s1, mut sy) = (0.0, 0.0);
        let mut inv_sqrt_lam = vec![0.0; n];
        for i in 0..n {
            let row = v.row(i);
            let lam = (pv + noise - dot(row, row)).max(lam_floor);
            let il = 1.0 / lam;
            s1 += il;
            sy += y_std[i] * il;
            for (j, &vj) in row.iter().enumerate() {
                p1[j] += vj * il;
                py[j] += vj * y_std[i] * il;
            }
            inv_sqrt_lam[i] = il.sqrt();
        }
        // B = I + (Λ^{-1/2}V ᵀ)ᵀ(Λ^{-1/2}Vᵀ): scale the rows in place,
        // then one SYRK through the parallel row-banded matmul (each
        // output row is a fixed sequence of contiguous dots).
        for i in 0..n {
            let s = inv_sqrt_lam[i];
            for vv in v.row_mut(i) {
                *vv *= s;
            }
        }
        let vt = v.transpose(); // m × n
        let mut b_mat = vt.matmul_nt(&vt)?; // V Λ⁻¹ Vᵀ
        b_mat.add_diag(1.0);
        let l_b = Cholesky::factor(&b_mat)?;
        let (trend, alpha) = trend_and_alpha(&l_mm, &l_b, &p1, &py, s1, sy)?;
        Ok(SparseGaussianProcess {
            kernel,
            noise,
            x,
            y_std,
            shift,
            scale,
            z,
            l_mm,
            b_mat,
            l_b,
            p1,
            py,
            s1,
            sy,
            trend,
            alpha,
        })
    }

    /// Number of training points.
    pub fn n(&self) -> usize {
        self.x.rows()
    }

    /// Input dimension.
    pub fn dim(&self) -> usize {
        self.x.cols()
    }

    /// Number of inducing points actually selected (may be below the
    /// requested `m` when the greedy residual hits its tolerance).
    pub fn m(&self) -> usize {
        self.z.rows()
    }

    /// The kernel in use.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Homoskedastic noise variance (standardized scale).
    pub fn noise(&self) -> f64 {
        self.noise
    }

    /// All training inputs.
    pub fn train_x(&self) -> &Matrix {
        &self.x
    }

    /// The inducing inputs `Z` — the support set cross-covariances are
    /// evaluated against.
    pub fn inducing_x(&self) -> &Matrix {
        &self.z
    }

    /// Training targets on the raw scale.
    pub fn train_y_raw(&self) -> Vec<f64> {
        self.y_std.iter().map(|v| v * self.scale + self.shift).collect()
    }

    /// Standardization `(shift, scale)`.
    pub fn standardization(&self) -> (f64, f64) {
        (self.shift, self.scale)
    }

    /// Profiled constant trend on the standardized scale.
    pub fn trend_std(&self) -> f64 {
        self.trend
    }

    /// Posterior-mean weights over the inducing set:
    /// `μ_std(x) = trend + k(Z, x)·weights`.
    pub fn weights(&self) -> &[f64] {
        &self.alpha
    }

    /// Best (lowest/highest) observed raw target over **all** training
    /// points (not just the inducing set).
    pub fn best_observed(&self, maximize: bool) -> f64 {
        let ys = self.train_y_raw();
        ys.iter()
            .copied()
            .fold(if maximize { f64::NEG_INFINITY } else { f64::INFINITY }, |acc, v| {
                if maximize {
                    acc.max(v)
                } else {
                    acc.min(v)
                }
            })
    }

    /// Posterior mean and **latent** variance at one point, raw scale —
    /// `O(m²)` via the two forward solves `u = L⁻¹k_m`, `w = L_B⁻¹u`:
    /// `σ²_std = k(x,x) − (‖u‖² − ‖w‖²)`.
    pub fn predict(&self, p: &[f64]) -> (f64, f64) {
        debug_assert_eq!(p.len(), self.dim());
        let k = self.kernel.cross_vec(&self.z, p);
        let mean_std = self.trend + dot(&k, &self.alpha);
        let mut u = k;
        self.l_mm.solve_lower_in_place(&mut u);
        let t = dot(&u, &u);
        self.l_b.solve_lower_in_place(&mut u);
        let var_std = (self.kernel.prior_var() - (t - dot(&u, &u))).max(1e-14);
        (mean_std * self.scale + self.shift, var_std * self.scale * self.scale)
    }

    /// [`predict`](Self::predict) with a reusable workspace:
    /// bit-identical results, zero heap allocations per call once the
    /// workspace has warmed up to the inducing-set size.
    pub fn predict_with(&self, p: &[f64], ws: &mut PredictWorkspace) -> (f64, f64) {
        debug_assert_eq!(p.len(), self.dim());
        ws.ensure(self.m());
        self.kernel.cross_vec_into(&self.z, p, &mut ws.k);
        let mean_std = self.trend + dot(&ws.k, &self.alpha);
        self.l_mm.solve_lower_in_place(&mut ws.k);
        let t = dot(&ws.k, &ws.k);
        self.l_b.solve_lower_in_place(&mut ws.k);
        let var_std =
            (self.kernel.prior_var() - (t - dot(&ws.k, &ws.k))).max(1e-14);
        (mean_std * self.scale + self.shift, var_std * self.scale * self.scale)
    }

    /// Standardized posterior mean and variance at `p`, leaving in `ws`
    /// the intermediates the acquisition gradient needs — the same
    /// contract as the dense
    /// [`crate::gp::GaussianProcess::posterior_parts_with`], with the
    /// inducing set as the support: `ws.cross()` = `k(Z, p)`,
    /// `ws.solved()` = `A k` for the posterior operator
    /// `A = L⁻ᵀ(I − B⁻¹)L⁻¹`, `ws.grad_factors()` = the radial factors
    /// for `∂k/∂p` over `Z`.
    pub fn posterior_parts_with(&self, p: &[f64], ws: &mut PredictWorkspace) -> (f64, f64) {
        debug_assert_eq!(p.len(), self.dim());
        let m = self.m();
        ws.ensure(m);
        if m > pbo_linalg::cholesky::BIT_EXACT_MAX_N {
            self.kernel.inv_lengthscales_into(&mut ws.inv_ls);
            self.kernel.cross_vec_grad_into_scaled(&self.z, p, &ws.inv_ls, &mut ws.k, &mut ws.gf);
        } else {
            self.kernel.cross_vec_grad_into(&self.z, p, &mut ws.k, &mut ws.gf);
        }
        let mean_std = self.trend + dot(&ws.k, &self.alpha);
        // c = A k = L⁻ᵀ (u − B⁻¹ u), u = L⁻¹ k.
        ws.c.copy_from_slice(&ws.k);
        self.l_mm.solve_lower_in_place(&mut ws.c);
        ws.w.copy_from_slice(&ws.c);
        self.l_b.solve_lower_in_place(&mut ws.w);
        self.l_b.solve_lower_t_in_place(&mut ws.w);
        for (c, w) in ws.c.iter_mut().zip(&ws.w) {
            *c -= w;
        }
        self.l_mm.solve_lower_t_in_place(&mut ws.c);
        let var_std = (self.kernel.prior_var() - dot(&ws.k, &ws.c)).max(1e-14);
        (mean_std, var_std)
    }

    /// Posterior mean only (one `O(m)` dot product).
    pub fn predict_mean(&self, p: &[f64]) -> f64 {
        let k = self.kernel.cross_vec(&self.z, p);
        (self.trend + dot(&k, &self.alpha)) * self.scale + self.shift
    }

    /// Batched prediction: means and latent variances for each row of
    /// `pts`, `O(m² q)` total.
    pub fn predict_many(&self, pts: &Matrix) -> (Vec<f64>, Vec<f64>) {
        let q = pts.rows();
        if q == 0 {
            return (Vec::new(), Vec::new());
        }
        debug_assert_eq!(pts.cols(), self.dim());
        let mut u = self.kernel.cross_matrix(&self.z, pts); // m × q
        let kta = u.matvec_t(&self.alpha).expect("alpha length m");
        let means: Vec<f64> =
            kta.iter().map(|v| (self.trend + v) * self.scale + self.shift).collect();
        self.l_mm.solve_lower_multi_in_place(&mut u);
        let mut w = u.clone();
        self.l_b.solve_lower_multi_in_place(&mut w);
        let tu = banded_sq_colsums(&u);
        let tw = banded_sq_colsums(&w);
        let pv = self.kernel.prior_var();
        let s2 = self.scale * self.scale;
        let vars: Vec<f64> = tu
            .iter()
            .zip(&tw)
            .map(|(a, b)| (pv - (a - b)).max(1e-14) * s2)
            .collect();
        (means, vars)
    }

    /// Joint posterior over the rows of `pts`: mean vector and full
    /// latent covariance `K** − K*ᵀ A K*` (exact prior block, Nyström
    /// cross terms), raw scale. PSD because `A ⪯ K_mm⁻¹` makes the
    /// subtracted term dominated by the Nyström `Q**` ⪯ `K**`.
    pub fn posterior_joint(&self, pts: &Matrix) -> Result<(Vec<f64>, Matrix)> {
        if pts.cols() != self.dim() {
            return Err(GpError::BadTrainingData(format!(
                "query dim {} vs model dim {}",
                pts.cols(),
                self.dim()
            )));
        }
        let q = pts.rows();
        let kxq = self.kernel.cross_matrix(&self.z, pts); // m × q
        let kta = kxq.matvec_t(&self.alpha).expect("alpha length m");
        let means: Vec<f64> =
            kta.iter().map(|v| (self.trend + v) * self.scale + self.shift).collect();
        let mut c = kxq.clone();
        self.cov_solve_matrix_in_place(&mut c)?; // C = A K*
        // K*ᵀ C accumulated row-major over the m support rows (lower
        // triangle, mirrored exactly for symmetry).
        let mut vtv = Matrix::zeros(q, q);
        for i in 0..kxq.rows() {
            let rk = kxq.row(i);
            let rc = c.row(i);
            for a in 0..q {
                let ka = rk[a];
                let out = vtv.row_mut(a);
                for b in 0..=a {
                    out[b] += ka * rc[b];
                }
            }
        }
        let s2 = self.scale * self.scale;
        let mut cov = Matrix::zeros(q, q);
        for a in 0..q {
            for b in 0..=a {
                let kab = self.kernel.eval(pts.row(a), pts.row(b));
                let cv = (kab - vtv[(a, b)]) * s2;
                cov[(a, b)] = cv;
                cov[(b, a)] = cv;
            }
        }
        for a in 0..q {
            if cov[(a, a)] < 1e-14 * s2 {
                cov[(a, a)] = 1e-14 * s2;
            }
        }
        Ok((means, cov))
    }

    /// Apply the posterior operator `A = L⁻ᵀ(I − B⁻¹)L⁻¹` to each
    /// column of `b` (an `m × q` cross block against the inducing set),
    /// in place — the sparse analogue of the dense `K_y⁻¹` solve.
    pub fn cov_solve_matrix_in_place(&self, b: &mut Matrix) -> Result<()> {
        self.l_mm.solve_lower_multi_in_place(b); // U
        let mut w = b.clone();
        self.l_b.solve_lower_multi_in_place(&mut w);
        self.l_b.solve_lower_t_multi_in_place(&mut w); // B⁻¹U
        let bs = b.as_mut_slice();
        for (bv, wv) in bs.iter_mut().zip(w.as_slice()) {
            *bv -= wv;
        }
        self.l_mm.solve_lower_t_multi_in_place(b);
        Ok(())
    }

    /// Apply the posterior operator `A` to one vector (see
    /// [`cov_solve_matrix_in_place`](Self::cov_solve_matrix_in_place)).
    pub fn cov_solve_vec(&self, b: &[f64]) -> Result<Vec<f64>> {
        let mut u = b.to_vec();
        self.l_mm.solve_lower_in_place(&mut u);
        let mut w = u.clone();
        self.l_b.solve_lower_in_place(&mut w);
        self.l_b.solve_lower_t_in_place(&mut w);
        for (uv, wv) in u.iter_mut().zip(&w) {
            *uv -= wv;
        }
        self.l_mm.solve_lower_t_in_place(&mut u);
        Ok(u)
    }

    /// Condition on additional observations without refitting the
    /// hyperparameters or moving the inducing set, in `O(m² q + m³)`:
    /// each new point contributes a rank-1 update to `B` and its
    /// Woodbury terms, then `B` is refactored and the trend/weights
    /// recomputed. `ys` are on the **raw** target scale; the frozen
    /// standardization is reused.
    ///
    /// Serves both the Kriging-Believer fantasy loop and the engine's
    /// cheap real-data append between full refits.
    pub fn condition_on(&self, xs: &[Vec<f64>], ys: &[f64]) -> Result<SparseGaussianProcess> {
        if xs.len() != ys.len() {
            return Err(GpError::BadTrainingData("xs/ys length mismatch".into()));
        }
        if xs.is_empty() {
            return Ok(self.clone());
        }
        for p in xs {
            if p.len() != self.dim() {
                return Err(GpError::BadTrainingData("new point dimension".into()));
            }
        }
        if !ys.iter().all(|v| v.is_finite()) {
            return Err(GpError::BadTrainingData("non-finite target".into()));
        }
        let m = self.m();
        let pv = self.kernel.prior_var();
        let lam_floor = self.noise.max(1e-12);
        let mut x = self.x.clone();
        let mut y_std = self.y_std.clone();
        let mut b_mat = self.b_mat.clone();
        let mut p1 = self.p1.clone();
        let mut py = self.py.clone();
        let (mut s1, mut sy) = (self.s1, self.sy);
        for (p, &yr) in xs.iter().zip(ys) {
            let yv = (yr - self.shift) / self.scale;
            let mut v = self.kernel.cross_vec(&self.z, p);
            self.l_mm.solve_lower_in_place(&mut v);
            let lam = (pv + self.noise - dot(&v, &v)).max(lam_floor);
            let il = 1.0 / lam;
            s1 += il;
            sy += yv * il;
            for (j, &vj) in v.iter().enumerate() {
                p1[j] += vj * il;
                py[j] += vj * yv * il;
            }
            for a in 0..m {
                let va = v[a] * il;
                let row = b_mat.row_mut(a);
                for (b, &vb) in v.iter().enumerate() {
                    row[b] += va * vb;
                }
            }
            x.push_row(p).expect("dimension checked above");
            y_std.push(yv);
        }
        let l_b = Cholesky::factor(&b_mat)?;
        let (trend, alpha) = trend_and_alpha(&self.l_mm, &l_b, &p1, &py, s1, sy)?;
        Ok(SparseGaussianProcess {
            kernel: self.kernel.clone(),
            noise: self.noise,
            x,
            y_std,
            shift: self.shift,
            scale: self.scale,
            z: self.z.clone(),
            l_mm: self.l_mm.clone(),
            b_mat,
            l_b,
            p1,
            py,
            s1,
            sy,
            trend,
            alpha,
        })
    }
}

/// Profiled trend and posterior weights from the whitened state.
fn trend_and_alpha(
    l_mm: &Cholesky,
    l_b: &Cholesky,
    p1: &[f64],
    py: &[f64],
    s1: f64,
    sy: f64,
) -> Result<(f64, Vec<f64>)> {
    let binv_p1 = l_b.solve(p1)?;
    let binv_py = l_b.solve(py)?;
    let t0 = s1 - dot(p1, &binv_p1);
    let trend = if t0.abs() > 1e-300 { (sy - dot(p1, &binv_py)) / t0 } else { 0.0 };
    let g: Vec<f64> = py.iter().zip(p1).map(|(a, b)| a - trend * b).collect();
    let mut alpha = l_b.solve(&g)?;
    l_mm.solve_lower_t_in_place(&mut alpha);
    Ok((trend, alpha))
}

/// Greedy pivoted-Cholesky inducing-point selection: residual diagonals
/// start at the prior variance; each round picks the largest residual
/// (lowest index on ties, a strict serial argmax), appends the
/// normalized residual kernel column and downdates. Stops early once
/// the best residual falls below `SELECT_TOL_REL`× the prior variance.
///
/// The per-row column update `(k(xᵢ, x_p) − Lᵢ·L_p) / √d_p` fans out
/// over row bands; rows are independent, so the result is bitwise
/// identical for any thread count.
fn select_inducing(kernel: &Kernel, x: &Matrix, m: usize) -> Vec<usize> {
    let n = x.rows();
    let d_in = x.cols();
    let pv = kernel.prior_var();
    let tol = SELECT_TOL_REL * pv;
    let mut diag = vec![pv; n];
    let mut lnm = Matrix::zeros(n, m);
    let mut sel = Vec::with_capacity(m);
    let mut col = vec![0.0; n];
    for j in 0..m {
        let mut p = 0usize;
        let mut best = f64::NEG_INFINITY;
        for (i, &di) in diag.iter().enumerate() {
            if di > best {
                best = di;
                p = i;
            }
        }
        if best <= tol {
            break;
        }
        let sqrt_dp = best.sqrt();
        let prow: Vec<f64> = lnm.row(p)[..j].to_vec();
        let xp: Vec<f64> = x.row(p).to_vec();
        for_each_row_chunk(&mut col, 1, n * (j + 6 * d_in), |i, slot| {
            let kip = kernel.eval(x.row(i), &xp);
            slot[0] = (kip - dot(&lnm.row(i)[..j], &prow)) / sqrt_dp;
        });
        for (i, &c) in col.iter().enumerate() {
            lnm[(i, j)] = c;
            diag[i] -= c * c;
        }
        diag[p] = 0.0;
        sel.push(p);
    }
    sel
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gp::GaussianProcess;
    use crate::kernel::KernelType;

    fn grid_data(n: usize) -> (Matrix, Vec<f64>) {
        // Deterministic 2-D low-discrepancy-ish grid with a smooth target.
        let mut x = Matrix::zeros(n, 2);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let a = (i as f64 + 0.5) / n as f64;
            let b = (i as f64 * 0.618_033_988_749_895) % 1.0;
            x[(i, 0)] = a;
            x[(i, 1)] = b;
            y.push((3.0 * a).sin() + (b - 0.4) * (b - 0.4) + 7.0);
        }
        (x, y)
    }

    fn test_kernel() -> Kernel {
        let mut k = Kernel::new(KernelType::Matern52, 2);
        k.lengthscales = vec![0.4, 0.4];
        k
    }

    #[test]
    fn full_inducing_set_matches_dense_gp() {
        // With m = n the Nyström approximation is exact and the FITC
        // diagonal collapses to the plain noise, so the sparse posterior
        // must agree with the dense one to numerical precision.
        let (x, y) = grid_data(24);
        let dense = GaussianProcess::new(x.clone(), &y, test_kernel(), 1e-4).unwrap();
        let sparse = SparseGaussianProcess::new(x, &y, test_kernel(), 1e-4, 24).unwrap();
        assert_eq!(sparse.m(), 24);
        for t in 0..12 {
            let p = [t as f64 * 0.09, (t as f64 * 0.13) % 1.0];
            let (md, vd) = dense.predict(&p);
            let (ms, vs) = sparse.predict(&p);
            assert!((md - ms).abs() < 1e-6 * (1.0 + md.abs()), "mean {ms} vs {md}");
            assert!((vd - vs).abs() < 1e-6 * (1.0 + vd.abs()), "var {vs} vs {vd}");
        }
    }

    #[test]
    fn few_inducing_points_still_sensible() {
        let (x, y) = grid_data(120);
        let gp = SparseGaussianProcess::new(x.clone(), &y, test_kernel(), 1e-4, 20).unwrap();
        assert_eq!(gp.m(), 20);
        assert_eq!(gp.n(), 120);
        // In-sample means should be accurate for a smooth function.
        let mut worst: f64 = 0.0;
        for i in 0..x.rows() {
            worst = worst.max((gp.predict_mean(x.row(i)) - y[i]).abs());
        }
        let spread = y.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - y.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(worst < 0.1 * spread, "worst {worst} vs spread {spread}");
        // Variance grows away from the data.
        let (_, v_in) = gp.predict(&[0.5, 0.5]);
        let (_, v_out) = gp.predict(&[4.0, -3.0]);
        assert!(v_out > 5.0 * v_in, "{v_out} vs {v_in}");
    }

    #[test]
    fn duplicate_points_shrink_the_inducing_set() {
        let mut x = Matrix::zeros(10, 1);
        for i in 0..10 {
            x[(i, 0)] = (i % 3) as f64 * 0.3; // only 3 distinct sites
        }
        let y: Vec<f64> = (0..10).map(|i| (i % 3) as f64).collect();
        let mut k = Kernel::new(KernelType::Matern52, 1);
        k.lengthscales = vec![0.5];
        let gp = SparseGaussianProcess::new(x, &y, k, 1e-4, 8).unwrap();
        assert_eq!(gp.m(), 3, "duplicates must early-stop the pivoted Cholesky");
        let (mean, var) = gp.predict(&[0.3]);
        assert!(mean.is_finite() && var.is_finite());
    }

    #[test]
    fn predict_many_and_joint_match_pointwise() {
        let (x, y) = grid_data(80);
        let gp = SparseGaussianProcess::new(x, &y, test_kernel(), 1e-4, 16).unwrap();
        let qs: Vec<Vec<f64>> =
            (0..9).map(|i| vec![i as f64 * 0.11, (i as f64 * 0.37) % 1.0]).collect();
        let pts = Matrix::from_rows(&qs).unwrap();
        let (means, vars) = gp.predict_many(&pts);
        let (jm, cov) = gp.posterior_joint(&pts).unwrap();
        for (i, p) in qs.iter().enumerate() {
            let (m, v) = gp.predict(p);
            assert!((means[i] - m).abs() < 1e-10 * (1.0 + m.abs()));
            assert!((vars[i] - v).abs() < 1e-10 * (1.0 + v.abs()));
            assert!((jm[i] - m).abs() < 1e-10 * (1.0 + m.abs()));
            assert!((cov[(i, i)] - v).abs() < 1e-8 * (1.0 + v.abs()));
        }
        // Joint covariance is symmetric with bounded correlations.
        for a in 0..qs.len() {
            for b in 0..a {
                assert_eq!(cov[(a, b)].to_bits(), cov[(b, a)].to_bits());
                let corr = cov[(a, b)] / (cov[(a, a)] * cov[(b, b)]).sqrt();
                assert!(corr.abs() <= 1.0 + 1e-9, "corr {corr}");
            }
        }
    }

    #[test]
    fn posterior_parts_match_predict() {
        let (x, y) = grid_data(60);
        let gp = SparseGaussianProcess::new(x, &y, test_kernel(), 1e-4, 12).unwrap();
        let mut ws = PredictWorkspace::new();
        for t in 0..8 {
            let p = [t as f64 * 0.12, (t as f64 * 0.29) % 1.0];
            let (mean_std, var_std) = gp.posterior_parts_with(&p, &mut ws);
            let (m, v) = gp.predict(&p);
            let (shift, scale) = gp.standardization();
            assert!((mean_std * scale + shift - m).abs() < 1e-10 * (1.0 + m.abs()));
            assert!((var_std * scale * scale - v).abs() < 1e-9 * (1.0 + v.abs()));
            // The solved vector reproduces the variance identity
            // var = prior − kᵀ(A k).
            let k = gp.kernel().cross_vec(gp.inducing_x(), &p);
            let c = gp.cov_solve_vec(&k).unwrap();
            let var_ref = (gp.kernel().prior_var() - dot(&k, &c)).max(1e-14);
            assert!((var_std - var_ref).abs() < 1e-12 * (1.0 + var_ref));
        }
    }

    #[test]
    fn condition_on_matches_full_rebuild() {
        let (x, y) = grid_data(50);
        let gp = SparseGaussianProcess::new(x.clone(), &y, test_kernel(), 1e-4, 12).unwrap();
        let new_x = vec![vec![0.21, 0.43], vec![0.77, 0.11]];
        let new_y = vec![7.8, 6.9];
        let upd = gp.condition_on(&new_x, &new_y).unwrap();
        assert_eq!(upd.n(), 52);

        // Rebuild on the stacked data with the same frozen inducing set
        // and standardization.
        let mut xs = x;
        for p in &new_x {
            xs.push_row(p).unwrap();
        }
        let (shift, scale) = gp.standardization();
        let mut y_std = gp.y_std.clone();
        y_std.extend(new_y.iter().map(|v| (v - shift) / scale));
        let rebuilt = SparseGaussianProcess::build(
            xs,
            y_std,
            shift,
            scale,
            gp.kernel().clone(),
            gp.noise(),
            gp.inducing_x().clone(),
        )
        .unwrap();
        for t in 0..10 {
            let p = [t as f64 * 0.1, (t as f64 * 0.31) % 1.0];
            let (m1, v1) = upd.predict(&p);
            let (m2, v2) = rebuilt.predict(&p);
            assert!((m1 - m2).abs() < 1e-8 * (1.0 + m2.abs()), "mean {m1} vs {m2}");
            assert!((v1 - v2).abs() < 1e-8 * (1.0 + v2.abs()), "var {v1} vs {v2}");
        }
    }

    #[test]
    fn condition_on_empty_is_noop_and_bad_input_rejected() {
        let (x, y) = grid_data(30);
        let gp = SparseGaussianProcess::new(x, &y, test_kernel(), 1e-4, 8).unwrap();
        let same = gp.condition_on(&[], &[]).unwrap();
        assert_eq!(same.n(), gp.n());
        assert!(gp.condition_on(&[vec![0.1, 0.2]], &[]).is_err());
        assert!(gp.condition_on(&[vec![0.1]], &[1.0]).is_err());
        assert!(gp.condition_on(&[vec![0.1, 0.2]], &[f64::NAN]).is_err());
    }

    #[test]
    fn rejects_bad_input() {
        let k = test_kernel();
        assert!(SparseGaussianProcess::new(Matrix::zeros(0, 2), &[], k.clone(), 1e-4, 4).is_err());
        let x = Matrix::from_rows(&[vec![0.1, 0.2]]).unwrap();
        assert!(SparseGaussianProcess::new(x.clone(), &[1.0, 2.0], k.clone(), 1e-4, 4).is_err());
        assert!(SparseGaussianProcess::new(x.clone(), &[f64::NAN], k.clone(), 1e-4, 4).is_err());
        let k1 = Kernel::new(KernelType::Matern52, 1);
        assert!(SparseGaussianProcess::new(x, &[1.0], k1, 1e-4, 4).is_err());
    }
}
