//! `pbo-server` command-line parsing, factored out of the binary so
//! every malformed input is unit-testable (same discipline as the
//! `repro` CLI: no panics, `Err` + usage + exit status 2).

use pbo_core::algorithms::AlgorithmKind;
use pbo_core::budget::Budget;
use pbo_core::session::{ProblemSpec, SessionConfig, SessionProfile};
use std::path::PathBuf;

/// Usage text printed on any argument error (and for `pbo-server help`).
pub const USAGE: &str = "usage: pbo-server <command> [options]

commands:
  serve      run the session daemon
  status     query a running daemon
  drive      drive one session end to end (test client)
  validate   check session checkpoint files offline
  gc         evict finished sessions' checkpoints offline

serve options:
  --addr HOST:PORT   listen address (default 127.0.0.1:7341; port 0
                     picks an ephemeral port)
  --dir DIR          session checkpoint directory (default pbo-sessions)
  --addr-file FILE   write the bound address to FILE once listening
  --workers N        connection-worker pool size (default: available
                     parallelism; the pool multiplexes all connections)
  --idle-timeout-s N close connections idle for N seconds with a typed
                     idle_timeout error (default 300, minimum 1)
  --max-line-bytes N answer request lines over N bytes with a typed
                     line_too_long error (default 1048576, minimum 1024)

status options:
  --addr HOST:PORT   daemon address (default 127.0.0.1:7341)
  --id ID            show one session instead of the server summary

drive options:
  --addr HOST:PORT   daemon address (default 127.0.0.1:7341)
  --id ID            session id (required)
  --problem NAME     benchmark, e.g. ackley-3d (default ackley-3d)
  --algo NAME        algorithm (default kb-q-ego)
  --cycles N         cycle budget (default 3)
  --q N              batch size (default 2)
  --init N           initial design size (default 6)
  --seed N           run seed (default 0)
  --profile NAME     session profile test|standard (default test)
  --stop-after K     stop after K tells without finishing (crash drills)
  --record-out FILE  write the finished record line to FILE
  --local            run the same config in-process instead of against
                     a daemon (reference for byte-for-byte diffs)

validate options:
  [DIR] | --dir DIR  checkpoint directory to scan (default pbo-sessions)

gc options:
  --dir DIR          checkpoint directory (default pbo-sessions)
  --max-age-secs N   keep finished sessions checkpointed within the
                     last N seconds
  --keep N           always keep the N newest finished sessions
  (at least one of --max-age-secs / --keep is required; in-flight and
  quarantined-corrupt sessions are never evicted)";

/// Parsed `serve` options.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOpts {
    /// Listen address.
    pub addr: String,
    /// Session checkpoint directory.
    pub dir: PathBuf,
    /// Optional file to write the bound address to.
    pub addr_file: Option<PathBuf>,
    /// Connection-worker pool size (available parallelism when absent).
    pub workers: Option<usize>,
    /// Idle-connection timeout, seconds.
    pub idle_timeout_s: u64,
    /// Request-line byte cap.
    pub max_line_bytes: usize,
}

impl ServeOpts {
    /// The pool configuration these options describe.
    pub fn server_config(&self) -> crate::server::ServerConfig {
        let mut cfg = crate::server::ServerConfig::default();
        if let Some(workers) = self.workers {
            cfg.workers = workers;
            cfg.max_conns = workers.max(1) * 64;
        }
        cfg.idle_timeout = std::time::Duration::from_secs(self.idle_timeout_s);
        cfg.max_line_bytes = self.max_line_bytes;
        cfg
    }
}

/// Parsed `status` options.
#[derive(Debug, Clone, PartialEq)]
pub struct StatusOpts {
    /// Daemon address.
    pub addr: String,
    /// Session to inspect (server summary when absent).
    pub id: Option<String>,
}

/// Parsed `drive` options.
#[derive(Debug, Clone, PartialEq)]
pub struct DriveOpts {
    /// Daemon address.
    pub addr: String,
    /// Session id.
    pub id: String,
    /// Benchmark name.
    pub problem: String,
    /// Algorithm name.
    pub algo: String,
    /// Cycle budget.
    pub cycles: usize,
    /// Batch size.
    pub q: usize,
    /// Initial design size.
    pub init: usize,
    /// Run seed.
    pub seed: u64,
    /// Session profile.
    pub profile: SessionProfile,
    /// Stop after this many tells (crash drills).
    pub stop_after: Option<usize>,
    /// Write the finished record line here.
    pub record_out: Option<PathBuf>,
    /// Run in-process instead of against a daemon.
    pub local: bool,
}

impl DriveOpts {
    /// The benchmark this drive evaluates.
    pub fn resolve_problem(&self) -> Result<pbo_problems::SyntheticFn, String> {
        crate::problems::resolve_problem(&self.problem)
            .ok_or_else(|| format!("--problem: unknown benchmark '{}'", self.problem))
    }

    /// The session config this drive creates (also the in-process
    /// reference config for `--local`).
    pub fn session_config(&self) -> Result<SessionConfig, String> {
        let algorithm = AlgorithmKind::from_name(&self.algo)
            .ok_or_else(|| format!("--algo: unknown algorithm '{}'", self.algo))?;
        let problem = self.resolve_problem()?;
        Ok(SessionConfig {
            algorithm,
            problem: ProblemSpec::of(&problem),
            budget: Budget::cycles(self.cycles, self.q).with_initial_samples(self.init),
            profile: self.profile,
            seed: self.seed,
        })
    }
}

/// Parsed `gc` options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GcOpts {
    /// Checkpoint directory to collect.
    pub dir: PathBuf,
    /// Age shield: keep finished sessions at most this old (seconds).
    pub max_age_secs: Option<u64>,
    /// Count shield: always keep the N newest finished sessions.
    pub keep: Option<usize>,
}

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Cmd {
    /// `pbo-server serve`.
    Serve(ServeOpts),
    /// `pbo-server status`.
    Status(StatusOpts),
    /// `pbo-server drive`.
    Drive(DriveOpts),
    /// `pbo-server validate`.
    Validate {
        /// Checkpoint directory to scan.
        dir: PathBuf,
    },
    /// `pbo-server gc`.
    Gc(GcOpts),
    /// `pbo-server help` (or no command).
    Help,
}

const DEFAULT_ADDR: &str = "127.0.0.1:7341";
const DEFAULT_DIR: &str = "pbo-sessions";

/// Parse `args` (without the program name). Every malformed input —
/// a flag missing its value, an unparsable value, an unknown option or
/// command — is an `Err` with a one-line description.
pub fn parse_args(args: &[String]) -> Result<Cmd, String> {
    let Some(command) = args.first() else { return Ok(Cmd::Help) };
    let rest = &args[1..];
    match command.as_str() {
        "help" | "--help" | "-h" => Ok(Cmd::Help),
        "serve" => parse_serve(rest).map(Cmd::Serve),
        "status" => parse_status(rest).map(Cmd::Status),
        "drive" => parse_drive(rest).map(Cmd::Drive),
        "validate" => parse_validate(rest),
        "gc" => parse_gc(rest).map(Cmd::Gc),
        other => Err(format!("unknown command '{other}'")),
    }
}

/// Iterate `flag value` pairs, handing each to `set`; `set` returns
/// false for flags it does not know. Flags listed in `bools` take no
/// value — `set` receives them with an empty value.
fn parse_flags(
    args: &[String],
    bools: &[&str],
    mut set: impl FnMut(&str, &str) -> Result<bool, String>,
) -> Result<(), String> {
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = if bools.contains(&flag) {
            ""
        } else {
            i += 1;
            args.get(i).ok_or_else(|| format!("{flag} needs a value"))?
        };
        if !set(flag, value)? {
            return Err(format!("unknown option '{flag}'"));
        }
        i += 1;
    }
    Ok(())
}

fn parse_count(flag: &str, value: &str) -> Result<usize, String> {
    let n: usize = value.parse().map_err(|_| format!("{flag}: invalid count '{value}'"))?;
    if n == 0 {
        return Err(format!("{flag}: must be at least 1"));
    }
    Ok(n)
}

fn parse_serve(args: &[String]) -> Result<ServeOpts, String> {
    let mut opts = ServeOpts {
        addr: DEFAULT_ADDR.into(),
        dir: PathBuf::from(DEFAULT_DIR),
        addr_file: None,
        workers: None,
        idle_timeout_s: 300,
        max_line_bytes: 1 << 20,
    };
    parse_flags(args, &[], |flag, value| {
        match flag {
            "--addr" => opts.addr = value.into(),
            "--dir" => opts.dir = PathBuf::from(value),
            "--addr-file" => opts.addr_file = Some(PathBuf::from(value)),
            "--workers" => opts.workers = Some(parse_count(flag, value)?),
            "--idle-timeout-s" => {
                let n: u64 = value
                    .parse()
                    .map_err(|_| format!("{flag}: invalid seconds '{value}'"))?;
                if n == 0 {
                    return Err(format!("{flag}: must be at least 1 second"));
                }
                opts.idle_timeout_s = n;
            }
            "--max-line-bytes" => {
                let n = parse_count(flag, value)?;
                // Below this even a bare request envelope cannot fit;
                // the flag exists to bound hostile lines, not to make
                // the protocol unusable.
                if n < 1024 {
                    return Err(format!("{flag}: must be at least 1024"));
                }
                opts.max_line_bytes = n;
            }
            _ => return Ok(false),
        }
        Ok(true)
    })?;
    Ok(opts)
}

fn parse_status(args: &[String]) -> Result<StatusOpts, String> {
    let mut opts = StatusOpts { addr: DEFAULT_ADDR.into(), id: None };
    parse_flags(args, &[], |flag, value| {
        match flag {
            "--addr" => opts.addr = value.into(),
            "--id" => opts.id = Some(value.into()),
            _ => return Ok(false),
        }
        Ok(true)
    })?;
    Ok(opts)
}

fn parse_drive(args: &[String]) -> Result<DriveOpts, String> {
    let mut opts = DriveOpts {
        addr: DEFAULT_ADDR.into(),
        id: String::new(),
        problem: "ackley-3d".into(),
        algo: "kb-q-ego".into(),
        cycles: 3,
        q: 2,
        init: 6,
        seed: 0,
        profile: SessionProfile::Test,
        stop_after: None,
        record_out: None,
        local: false,
    };
    parse_flags(
        args,
        &["--local"],
        |flag, value| {
            match flag {
                "--local" => opts.local = true,
                "--addr" => opts.addr = value.into(),
                "--id" => opts.id = value.into(),
                "--problem" => opts.problem = value.into(),
                "--algo" => opts.algo = value.into(),
                "--cycles" => opts.cycles = parse_count(flag, value)?,
                "--q" => opts.q = parse_count(flag, value)?,
                "--init" => opts.init = parse_count(flag, value)?,
                "--seed" => {
                    opts.seed =
                        value.parse().map_err(|_| format!("--seed: invalid seed '{value}'"))?;
                }
                "--profile" => {
                    opts.profile = SessionProfile::from_name(value)
                        .ok_or_else(|| format!("--profile: unknown profile '{value}'"))?;
                }
                "--stop-after" => {
                    let k: usize = value
                        .parse()
                        .map_err(|_| format!("--stop-after: invalid count '{value}'"))?;
                    opts.stop_after = Some(k);
                }
                "--record-out" => opts.record_out = Some(PathBuf::from(value)),
                _ => return Ok(false),
            }
            Ok(true)
        },
    )?;
    if opts.id.is_empty() {
        return Err("drive needs --id".into());
    }
    // Resolve eagerly so bad names fail at parse time, not mid-drive.
    opts.session_config()?;
    Ok(opts)
}

fn parse_validate(args: &[String]) -> Result<Cmd, String> {
    // `validate DIR` and `validate --dir DIR` both work; a bare
    // positional is the natural shell spelling.
    if let [dir] = args {
        if !dir.starts_with('-') {
            return Ok(Cmd::Validate { dir: PathBuf::from(dir) });
        }
    }
    let mut dir = PathBuf::from(DEFAULT_DIR);
    parse_flags(args, &[], |flag, value| {
        match flag {
            "--dir" => dir = PathBuf::from(value),
            _ => return Ok(false),
        }
        Ok(true)
    })?;
    Ok(Cmd::Validate { dir })
}

fn parse_gc(args: &[String]) -> Result<GcOpts, String> {
    let mut opts =
        GcOpts { dir: PathBuf::from(DEFAULT_DIR), max_age_secs: None, keep: None };
    parse_flags(args, &[], |flag, value| {
        match flag {
            "--dir" => opts.dir = PathBuf::from(value),
            "--max-age-secs" => {
                let n: u64 = value
                    .parse()
                    .map_err(|_| format!("--max-age-secs: invalid seconds '{value}'"))?;
                opts.max_age_secs = Some(n);
            }
            "--keep" => {
                let n: usize =
                    value.parse().map_err(|_| format!("--keep: invalid count '{value}'"))?;
                opts.keep = Some(n);
            }
            _ => return Ok(false),
        }
        Ok(true)
    })?;
    // Requiring an explicit shield keeps a bare `pbo-server gc` from
    // deleting every finished session by default.
    if opts.max_age_secs.is_none() && opts.keep.is_none() {
        return Err("gc needs --max-age-secs and/or --keep".into());
    }
    Ok(opts)
}

/// Run the in-process reference for a drive config: the same
/// `RunRecord` a fully remote session must reproduce byte for byte.
pub fn run_local_reference(opts: &DriveOpts) -> Result<String, String> {
    let cfg = opts.session_config()?;
    let problem = opts.resolve_problem()?;
    let record = pbo_core::algorithms::run_algorithm_observed(
        cfg.algorithm,
        &problem,
        &cfg.budget,
        cfg.profile.algo_config(),
        cfg.seed,
        pbo_core::observe::NullObserver,
    )
    .map_err(|e| format!("invalid configuration: {e}"))?;
    Ok(record.to_json_line())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_and_full_flag_sets() {
        assert_eq!(parse_args(&[]).unwrap(), Cmd::Help);
        assert_eq!(parse_args(&args(&["help"])).unwrap(), Cmd::Help);

        let Cmd::Serve(o) = parse_args(&args(&[
            "serve", "--addr", "127.0.0.1:0", "--dir", "tmp/s", "--addr-file", "tmp/a",
            "--workers", "4", "--idle-timeout-s", "30", "--max-line-bytes", "65536",
        ]))
        .unwrap() else {
            panic!("expected serve")
        };
        assert_eq!(o.addr, "127.0.0.1:0");
        assert_eq!(o.dir, PathBuf::from("tmp/s"));
        assert_eq!(o.addr_file, Some(PathBuf::from("tmp/a")));
        assert_eq!(o.workers, Some(4));
        assert_eq!(o.idle_timeout_s, 30);
        assert_eq!(o.max_line_bytes, 65536);
        let cfg = o.server_config();
        assert_eq!(cfg.workers, 4);
        assert_eq!(cfg.max_conns, 4 * 64);
        assert_eq!(cfg.idle_timeout, std::time::Duration::from_secs(30));
        assert_eq!(cfg.max_line_bytes, 65536);

        // Without --workers the pool tracks available parallelism.
        let Cmd::Serve(o) = parse_args(&args(&["serve"])).unwrap() else {
            panic!("expected serve")
        };
        assert_eq!(o.workers, None);
        assert_eq!(o.idle_timeout_s, 300);
        assert_eq!(o.max_line_bytes, 1 << 20);
        let defaults = crate::server::ServerConfig::default();
        assert_eq!(o.server_config().workers, defaults.workers);

        let Cmd::Status(o) =
            parse_args(&args(&["status", "--addr", "h:1", "--id", "s7"])).unwrap()
        else {
            panic!("expected status")
        };
        assert_eq!(o.id.as_deref(), Some("s7"));

        let Cmd::Drive(o) = parse_args(&args(&[
            "drive", "--id", "s1", "--problem", "schwefel-2d", "--algo", "turbo", "--cycles",
            "5", "--q", "3", "--init", "8", "--seed", "42", "--profile", "standard",
            "--stop-after", "2", "--record-out", "r.json", "--local",
        ]))
        .unwrap() else {
            panic!("expected drive")
        };
        assert_eq!(o.algo, "turbo");
        assert_eq!(o.cycles, 5);
        assert_eq!(o.q, 3);
        assert_eq!(o.seed, 42);
        assert_eq!(o.profile, SessionProfile::Standard);
        assert_eq!(o.stop_after, Some(2));
        assert!(o.local);
        let cfg = o.session_config().unwrap();
        assert_eq!(cfg.problem.name, "schwefel-2d");

        let Cmd::Validate { dir } = parse_args(&args(&["validate", "--dir", "x"])).unwrap()
        else {
            panic!("expected validate")
        };
        assert_eq!(dir, PathBuf::from("x"));
        let Cmd::Validate { dir } = parse_args(&args(&["validate", "y"])).unwrap() else {
            panic!("expected validate")
        };
        assert_eq!(dir, PathBuf::from("y"));
    }

    #[test]
    fn gc_requires_an_explicit_shield() {
        let Cmd::Gc(o) = parse_args(&args(&[
            "gc", "--dir", "tmp/g", "--max-age-secs", "3600", "--keep", "4",
        ]))
        .unwrap() else {
            panic!("expected gc")
        };
        assert_eq!(o.dir, PathBuf::from("tmp/g"));
        assert_eq!(o.max_age_secs, Some(3600));
        assert_eq!(o.keep, Some(4));

        let Cmd::Gc(o) = parse_args(&args(&["gc", "--keep", "0"])).unwrap() else {
            panic!("expected gc")
        };
        assert_eq!(o.dir, PathBuf::from(DEFAULT_DIR));
        assert_eq!(o.keep, Some(0));

        // A bare `gc` would otherwise evict every finished session.
        assert!(parse_args(&args(&["gc"])).is_err());
        assert!(parse_args(&args(&["gc", "--dir", "tmp/g"])).is_err());
        assert!(parse_args(&args(&["gc", "--max-age-secs", "soon"])).is_err());
        assert!(parse_args(&args(&["gc", "--keep", "-1"])).is_err());
    }

    #[test]
    fn trailing_flags_are_errors_not_panics() {
        for argv in [
            vec!["serve", "--addr"],
            vec!["status", "--id"],
            vec!["drive", "--id", "s", "--cycles"],
            vec!["validate", "--dir"],
        ] {
            let e = parse_args(&args(&argv)).unwrap_err();
            assert!(e.contains("needs a value"), "{argv:?}: {e}");
        }
    }

    #[test]
    fn malformed_values_are_errors_not_panics() {
        let base = ["drive", "--id", "s"];
        let cases: &[(&[&str], &str)] = &[
            (&["--cycles", "x"], "invalid count"),
            (&["--cycles", "0"], "at least 1"),
            (&["--q", "nope"], "invalid count"),
            (&["--seed", "-1"], "invalid seed"),
            (&["--profile", "warp"], "unknown profile"),
            (&["--problem", "warp-3d"], "unknown benchmark"),
            (&["--algo", "sgd"], "unknown algorithm"),
            (&["--frobnicate", "v"], "unknown option"),
        ];
        for (extra, want) in cases {
            let mut argv: Vec<&str> = base.to_vec();
            argv.extend_from_slice(extra);
            let e = parse_args(&args(&argv)).unwrap_err();
            assert!(e.contains(want), "{argv:?}: {e}");
        }
        assert!(parse_args(&args(&["drive"])).unwrap_err().contains("needs --id"));
        assert!(parse_args(&args(&["frobnicate"])).unwrap_err().contains("unknown command"));
    }

    #[test]
    fn serve_pool_flags_are_validated() {
        let cases: &[(&[&str], &str)] = &[
            (&["--workers", "0"], "at least 1"),
            (&["--workers", "many"], "invalid count"),
            (&["--idle-timeout-s", "0"], "at least 1 second"),
            (&["--idle-timeout-s", "-5"], "invalid seconds"),
            (&["--idle-timeout-s", "soon"], "invalid seconds"),
            (&["--max-line-bytes", "512"], "at least 1024"),
            (&["--max-line-bytes", "0"], "at least 1"),
            (&["--max-line-bytes", "big"], "invalid count"),
        ];
        for (extra, want) in cases {
            let mut argv = vec!["serve"];
            argv.extend_from_slice(extra);
            let e = parse_args(&args(&argv)).unwrap_err();
            assert!(e.contains(want), "{argv:?}: {e}");
        }
        // The floor itself is accepted.
        assert!(parse_args(&args(&["serve", "--max-line-bytes", "1024"])).is_ok());
        assert!(parse_args(&args(&["serve", "--idle-timeout-s", "1"])).is_ok());
        assert!(parse_args(&args(&["serve", "--workers", "1"])).is_ok());
    }
}
