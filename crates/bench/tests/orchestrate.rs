//! Orchestrator integration suite: checkpoint aggregation is a pure
//! fold — artifacts are byte-identical across worker counts and across
//! interrupted-then-resumed vs uninterrupted campaigns.

use pbo_bench::grid::ProblemSpec;
use pbo_bench::orchestrate::{
    execute_grid, write_checkpoint, GridPlan, OrchestratorConfig,
};
use pbo_bench::profiles::Profile;
use pbo_bench::report;
use pbo_core::algorithms::AlgorithmKind;
use pbo_core::observe::metrics::MetricsRegistry;
use pbo_core::record::{CycleRecord, FaultCounters, RunRecord};
use std::path::{Path, PathBuf};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pbo-orch-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

// ---------------------------------------------------------------------
// Golden-file aggregation: hand-built checkpoint records (one with
// quarantined-NaN fault counters) → report fold → pinned CSV bytes,
// identical for 1-worker and 4-worker orchestration.
// ---------------------------------------------------------------------

fn synthetic_plan() -> GridPlan {
    GridPlan {
        problem: ProblemSpec::Ackley,
        algos: vec![AlgorithmKind::RandomSearch, AlgorithmKind::Turbo],
        batches: vec![1, 2],
        runs: 2,
        profile: Profile::Smoke,
        minutes: None,
    }
}

/// A deterministic hand-built record for one (algo, q, rep) cell. The
/// `repetition == 1` record of the first cell carries quarantined-NaN
/// fault counters, exercising the fault path through checkpoint
/// serialization and aggregation.
fn synthetic_record(algo: AlgorithmKind, q: usize, rep: usize, seed: u64) -> RunRecord {
    let ai = if algo == AlgorithmKind::RandomSearch { 1.0 } else { 2.0 };
    let base = ai * 10.0 + q as f64 + rep as f64 * 0.25;
    let faults = if ai == 1.0 && q == 1 && rep == 1 {
        FaultCounters {
            nan_quarantined: 3,
            retries: 3,
            virtual_secs_lost: 12.5,
            ..FaultCounters::default()
        }
    } else {
        FaultCounters::default()
    };
    RunRecord {
        algorithm: algo.name().into(),
        problem: "ackley-12d".into(),
        maximize: false,
        batch_size: q,
        seed,
        doe_size: 1,
        best_x: vec![0.5; 3],
        y_min: vec![base, base - 1.0 / 3.0, base - 0.1],
        cycles: vec![CycleRecord {
            cycle: 0,
            fit_time: 1.5,
            acq_time: 0.5,
            sim_time: 10.0,
            n_evals: q,
            best_y_min: base - 1.0 / 3.0,
            clock: 12.0,
            faults,
        }],
        final_clock: 12.0,
        doe_faults: FaultCounters::default(),
    }
}

/// Write every synthetic checkpoint for `plan` into `dir`.
fn write_synthetic_checkpoints(plan: &GridPlan, dir: &Path) {
    for t in plan.tasks() {
        let path = t.checkpoint_path(plan, dir);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        let rec = synthetic_record(t.algo, t.q, t.repetition, t.seed);
        write_checkpoint(&path, &t.run_key(plan), plan.profile, &rec).unwrap();
    }
}

/// Fold checkpoints with `jobs` workers and render the Tables-4–6 CSV.
fn aggregate_to_csv(plan: &GridPlan, dir: &Path, jobs: usize) -> String {
    let cfg = OrchestratorConfig {
        jobs,
        resume: true,
        dir: dir.to_path_buf(),
        trace: false,
    };
    let outcome = execute_grid(plan, &cfg, None).unwrap();
    assert_eq!(outcome.executed, 0, "all runs must come from checkpoints");
    assert_eq!(outcome.resumed, plan.tasks().len());
    let cells: Vec<Vec<pbo_core::stats::Summary>> = plan
        .batches
        .iter()
        .map(|&q| {
            plan.algos
                .iter()
                .map(|&a| report::summarize_final(&outcome.records[&(a, q)]))
                .collect()
        })
        .collect();
    let rows = report::benchmark_csv_rows(&plan.batches, &cells);
    let path = dir.join("golden.csv");
    report::write_csv(&path, "q,algo_index,mean,sd,min,max", &rows).unwrap();
    std::fs::read_to_string(path).unwrap()
}

#[test]
fn golden_aggregation_from_checkpoints_pins_csv_bytes() {
    let plan = synthetic_plan();
    let dir = tmp_dir("golden");
    write_synthetic_checkpoints(&plan, &dir);

    let csv1 = aggregate_to_csv(&plan, &dir, 1);
    let csv4 = aggregate_to_csv(&plan, &dir, 4);
    assert_eq!(csv1, csv4, "1-worker and 4-worker folds must agree byte-for-byte");

    // Finals per cell: best of y_min = base - 1/3 with base =
    // ai·10 + q + rep/4 ⇒ finals (rep 0, rep 1) = (b, b + 0.25),
    // mean = b + 0.125, sample sd = 0.25/√2, min = b, max = b + 0.25 —
    // pinned here at full shortest-roundtrip precision.
    let golden = "q,algo_index,mean,sd,min,max\n\
                  1,0,10.791666666666666,0.1767766952966369,10.666666666666666,10.916666666666666\n\
                  1,1,20.791666666666668,0.1767766952966369,20.666666666666668,20.916666666666668\n\
                  2,0,11.791666666666666,0.1767766952966369,11.666666666666666,11.916666666666666\n\
                  2,1,21.791666666666668,0.1767766952966369,21.666666666666668,21.916666666666668\n";
    assert_eq!(csv1, golden, "aggregated CSV drifted from the pinned golden bytes");

    // The quarantined-NaN fault counters survive checkpoint
    // serialization and surface in the aggregate fault summary.
    let cfg = OrchestratorConfig { jobs: 1, resume: true, dir: dir.clone(), trace: false };
    let outcome = execute_grid(&plan, &cfg, None).unwrap();
    let faulty_cell = &outcome.records[&(AlgorithmKind::RandomSearch, 1)];
    let line = report::fault_summary(faulty_cell).expect("NaN-quarantine counters present");
    assert!(line.contains("3 NaN"), "{line}");
    assert!(line.contains("12.5 virtual s lost"), "{line}");
    let clean_cell = &outcome.records[&(AlgorithmKind::Turbo, 2)];
    assert!(report::fault_summary(clean_cell).is_none());

    let _ = std::fs::remove_dir_all(dir);
}

// ---------------------------------------------------------------------
// Real-run orchestration: 1 vs 4 workers produce byte-identical
// checkpoints; interrupting (deleting a checkpoint) and resuming
// reproduces the uninterrupted artifacts exactly.
// ---------------------------------------------------------------------

fn real_plan() -> GridPlan {
    GridPlan {
        problem: ProblemSpec::Ackley,
        algos: vec![AlgorithmKind::RandomSearch, AlgorithmKind::Turbo],
        batches: vec![1, 2],
        runs: 2,
        profile: Profile::Smoke,
        minutes: Some(0.5),
    }
}

/// Raw serialized records, in canonical order. Bit-reproducible across
/// executions only for algorithms that never charge measured fit/acq
/// time (RandomSearch); GP algorithms carry wall-clock-measured
/// overhead in `fit_time`/`acq_time`, so use [`artifact_fingerprint`]
/// for them.
fn records_fingerprint(
    plan: &GridPlan,
    records: &pbo_bench::orchestrate::GridRecords,
) -> String {
    let mut out = String::new();
    for &q in &plan.batches {
        for &a in &plan.algos {
            for r in &records[&(a, q)] {
                out.push_str(&r.to_json_line());
                out.push('\n');
            }
        }
    }
    out
}

/// The bytes of the actual paper artifacts — final-value summaries
/// (Tables 4–6) and simulations-per-batch (Fig. 2/9) — which is what
/// the orchestrator promises to keep identical across worker counts
/// and interruptions. Excludes the wall-clock-measured overhead times.
fn artifact_fingerprint(
    plan: &GridPlan,
    records: &pbo_bench::orchestrate::GridRecords,
) -> String {
    let cells: Vec<Vec<pbo_core::stats::Summary>> = plan
        .batches
        .iter()
        .map(|&q| {
            plan.algos
                .iter()
                .map(|&a| report::summarize_final(&records[&(a, q)]))
                .collect()
        })
        .collect();
    let mut out = String::new();
    for row in report::benchmark_csv_rows(&plan.batches, &cells) {
        let line: Vec<String> = row.iter().map(|v| format!("{v:?}")).collect();
        out.push_str(&line.join(","));
        out.push('\n');
    }
    for &a in &plan.algos {
        let per_q: Vec<Vec<pbo_core::record::RunRecord>> =
            plan.batches.iter().map(|&q| records[&(a, q)].clone()).collect();
        for (m, s) in report::evals_by_batch(&per_q) {
            out.push_str(&format!("{m:?},{s:?}\n"));
        }
    }
    out
}

/// The RandomSearch slice of a grid, serialized raw — these records
/// are fully virtual (no measured time) and must match bit-for-bit.
fn random_records_fingerprint(
    plan: &GridPlan,
    records: &pbo_bench::orchestrate::GridRecords,
) -> String {
    let narrowed = GridPlan { algos: vec![AlgorithmKind::RandomSearch], ..plan.clone() };
    records_fingerprint(&narrowed, records)
}

#[test]
fn worker_count_does_not_change_artifacts() {
    let plan = real_plan();
    let d1 = tmp_dir("jobs1");
    let d4 = tmp_dir("jobs4");
    let metrics = MetricsRegistry::new();

    let o1 = execute_grid(
        &plan,
        &OrchestratorConfig { jobs: 1, resume: false, dir: d1.clone(), trace: false },
        Some(&metrics),
    )
    .unwrap();
    let o4 = execute_grid(
        &plan,
        &OrchestratorConfig { jobs: 4, resume: false, dir: d4.clone(), trace: false },
        None,
    )
    .unwrap();
    assert_eq!(o1.executed, plan.tasks().len());
    assert_eq!(o4.executed, plan.tasks().len());
    assert_eq!(
        artifact_fingerprint(&plan, &o1.records),
        artifact_fingerprint(&plan, &o4.records),
        "tables/figures must be byte-identical for any worker count"
    );
    assert_eq!(
        random_records_fingerprint(&plan, &o1.records),
        random_records_fingerprint(&plan, &o4.records),
        "fully-virtual records must be bit-identical for any worker count"
    );

    // Metrics surfaced per cell and globally.
    let snap = metrics.snapshot();
    assert_eq!(snap.counter("orchestrator.runs_executed"), 8);
    assert_eq!(snap.counter("orchestrator.runs_resumed"), 0);
    assert_eq!(snap.counter("orchestrator.cell.ackley.turbo.q2.completed"), 2);
    assert_eq!(snap.counter("orchestrator.cell.ackley.random.q1.completed"), 2);

    let _ = std::fs::remove_dir_all(d1);
    let _ = std::fs::remove_dir_all(d4);
}

#[test]
fn interrupted_then_resumed_matches_uninterrupted() {
    let plan = real_plan();
    let full = tmp_dir("full");
    let interrupted = tmp_dir("interrupted");

    let reference = execute_grid(
        &plan,
        &OrchestratorConfig { jobs: 2, resume: false, dir: full.clone(), trace: false },
        None,
    )
    .unwrap();

    // "Interrupt": run everything, then delete two checkpoints as if
    // the campaign had been killed mid-flight.
    execute_grid(
        &plan,
        &OrchestratorConfig { jobs: 2, resume: false, dir: interrupted.clone(), trace: false },
        None,
    )
    .unwrap();
    let mut ckpts: Vec<PathBuf> = std::fs::read_dir(interrupted.join("ackley"))
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    ckpts.sort();
    assert_eq!(ckpts.len(), 8);
    std::fs::remove_file(&ckpts[1]).unwrap();
    std::fs::remove_file(&ckpts[6]).unwrap();

    let resumed = execute_grid(
        &plan,
        &OrchestratorConfig { jobs: 2, resume: true, dir: interrupted.clone(), trace: false },
        None,
    )
    .unwrap();
    assert_eq!(resumed.executed, 2, "only the deleted runs re-execute");
    assert_eq!(resumed.resumed, 6);
    assert_eq!(
        artifact_fingerprint(&plan, &reference.records),
        artifact_fingerprint(&plan, &resumed.records),
        "resume must reproduce the uninterrupted campaign's artifacts byte-exactly"
    );
    assert_eq!(
        random_records_fingerprint(&plan, &reference.records),
        random_records_fingerprint(&plan, &resumed.records),
        "fully-virtual records must survive interruption bit-exactly"
    );

    // A corrupt checkpoint is re-run, not mis-read.
    std::fs::write(&ckpts[0], "{\"event\":\"checkpoint\"").unwrap();
    let healed = execute_grid(
        &plan,
        &OrchestratorConfig { jobs: 1, resume: true, dir: interrupted.clone(), trace: false },
        None,
    )
    .unwrap();
    assert_eq!(healed.executed, 1);
    assert_eq!(
        artifact_fingerprint(&plan, &reference.records),
        artifact_fingerprint(&plan, &healed.records),
    );

    let _ = std::fs::remove_dir_all(full);
    let _ = std::fs::remove_dir_all(interrupted);
}

#[test]
fn trace_option_writes_valid_event_streams_without_perturbing_runs() {
    let mut plan = real_plan();
    plan.algos = vec![AlgorithmKind::RandomSearch];
    plan.batches = vec![2];
    plan.runs = 1;
    let plain = tmp_dir("notrace");
    let traced = tmp_dir("trace");

    let a = execute_grid(
        &plan,
        &OrchestratorConfig { jobs: 1, resume: false, dir: plain.clone(), trace: false },
        None,
    )
    .unwrap();
    let b = execute_grid(
        &plan,
        &OrchestratorConfig { jobs: 1, resume: false, dir: traced.clone(), trace: true },
        None,
    )
    .unwrap();
    assert_eq!(
        records_fingerprint(&plan, &a.records),
        records_fingerprint(&plan, &b.records),
        "tracing must not perturb results"
    );

    let trace_files: Vec<PathBuf> = std::fs::read_dir(traced.join("ackley"))
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.to_string_lossy().ends_with(".trace.jsonl"))
        .collect();
    assert_eq!(trace_files.len(), 1);
    let body = std::fs::read_to_string(&trace_files[0]).unwrap();
    let mut names = Vec::new();
    for line in body.lines() {
        names.push(pbo_core::observe::jsonl::validate_line(line).unwrap());
    }
    assert_eq!(names.first().map(String::as_str), Some("run_started"));
    assert_eq!(names.last().map(String::as_str), Some("run_finished"));

    let _ = std::fs::remove_dir_all(plain);
    let _ = std::fs::remove_dir_all(traced);
}
