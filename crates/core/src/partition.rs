//! Binary space partitioning for BSP-EGO (Gobert et al., HPCS 2020).
//!
//! The unit cube is kept split into a fixed number of leaf cells. Each
//! cycle runs one local acquisition per leaf (in parallel), then the
//! partition *evolves*: the leaf holding the best acquisition value is
//! split further (intensification where the model sees promise) while
//! the least valuable sibling pair is merged back (so the leaf count —
//! and the parallel load balance — stays constant, and the partition
//! always covers the whole domain).

use pbo_opt::Bounds;

/// Node of the BSP tree.
#[derive(Debug, Clone)]
struct Node {
    bounds: Bounds,
    parent: Option<usize>,
    children: Option<(usize, usize)>,
    /// Set when the node is merged away (kept in the arena for index
    /// stability but excluded from traversals).
    dead: bool,
}

/// The partition tree.
#[derive(Debug, Clone)]
pub struct BspTree {
    nodes: Vec<Node>,
}

impl BspTree {
    /// Build a partition of `bounds` with exactly `n_leaves` leaves by
    /// repeated splitting of the widest cell.
    pub fn new(bounds: Bounds, n_leaves: usize) -> Self {
        assert!(n_leaves >= 1);
        let mut tree = BspTree {
            nodes: vec![Node { bounds, parent: None, children: None, dead: false }],
        };
        while tree.leaves().len() < n_leaves {
            // Split the leaf with the largest volume proxy (sum of log
            // widths ≈ log volume) for an even initial partition.
            let leaves = tree.leaves();
            let widest = leaves
                .into_iter()
                .max_by(|&a, &b| {
                    let va: f64 =
                        tree.nodes[a].bounds.widths().iter().map(|w| w.max(1e-300).ln()).sum();
                    let vb: f64 =
                        tree.nodes[b].bounds.widths().iter().map(|w| w.max(1e-300).ln()).sum();
                    va.total_cmp(&vb)
                })
                .expect("tree has leaves");
            tree.split(widest);
        }
        tree
    }

    /// Indices of the current leaf cells.
    pub fn leaves(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&i| !self.nodes[i].dead && self.nodes[i].children.is_none())
            .collect()
    }

    /// The box of a node.
    pub fn bounds_of(&self, i: usize) -> &Bounds {
        &self.nodes[i].bounds
    }

    /// Split a leaf along its widest dimension at the midpoint. Returns
    /// the two child indices.
    pub fn split(&mut self, leaf: usize) -> (usize, usize) {
        assert!(self.nodes[leaf].children.is_none(), "can only split leaves");
        let b = self.nodes[leaf].bounds.clone();
        let widths = b.widths();
        let dim = pbo_linalg::vec_ops::argmax(&widths).expect("non-empty bounds");
        let mid = 0.5 * (b.lo()[dim] + b.hi()[dim]);
        let mut lo_hi = b.hi().to_vec();
        lo_hi[dim] = mid;
        let mut hi_lo = b.lo().to_vec();
        hi_lo[dim] = mid;
        let left = Node {
            bounds: Bounds::new(b.lo().to_vec(), lo_hi),
            parent: Some(leaf),
            children: None,
            dead: false,
        };
        let right = Node {
            bounds: Bounds::new(hi_lo, b.hi().to_vec()),
            parent: Some(leaf),
            children: None,
            dead: false,
        };
        let li = self.nodes.len();
        self.nodes.push(left);
        let ri = self.nodes.len();
        self.nodes.push(right);
        self.nodes[leaf].children = Some((li, ri));
        (li, ri)
    }

    /// Merge a node whose two children are both leaves: the node becomes
    /// a leaf again. Returns true on success.
    pub fn merge(&mut self, parent: usize) -> bool {
        let Some((a, b)) = self.nodes[parent].children else {
            return false;
        };
        if self.nodes[a].children.is_some() || self.nodes[b].children.is_some() {
            return false;
        }
        self.nodes[parent].children = None;
        // Children stay in the arena (index stability) but are dead.
        self.nodes[a].dead = true;
        self.nodes[b].dead = true;
        true
    }

    /// Parent of a node.
    pub fn parent_of(&self, i: usize) -> Option<usize> {
        self.nodes[i].parent
    }

    /// Evolve the partition after a cycle: split the leaf with the best
    /// (largest) acquisition score; merge the mergeable sibling pair
    /// with the worst combined score so the leaf count stays constant.
    /// `scores[k]` corresponds to `leaves[k]`.
    pub fn evolve(&mut self, leaves: &[usize], scores: &[f64]) {
        assert_eq!(leaves.len(), scores.len());
        if leaves.len() < 2 {
            return;
        }
        let best_k = pbo_linalg::vec_ops::argmax(scores).expect("non-empty scores");
        let best_leaf = leaves[best_k];

        // Candidate merges: parents whose both children are current
        // leaves, excluding the best leaf's parent (splitting then
        // merging the same region would be a no-op).
        let score_of = |leaf: usize| -> f64 {
            leaves
                .iter()
                .position(|&l| l == leaf)
                .map_or(f64::NEG_INFINITY, |k| scores[k])
        };
        let mut merge_choice: Option<(usize, f64)> = None;
        for &leaf in leaves {
            let Some(p) = self.nodes[leaf].parent else { continue };
            let Some((a, b)) = self.nodes[p].children else { continue };
            if self.nodes[a].children.is_some() || self.nodes[b].children.is_some() {
                continue;
            }
            if a == best_leaf || b == best_leaf {
                continue;
            }
            let pair_score = score_of(a).max(score_of(b));
            if merge_choice.is_none_or(|(_, s)| pair_score < s) {
                merge_choice = Some((p, pair_score));
            }
        }
        if let Some((p, _)) = merge_choice {
            if self.merge(p) {
                self.split(best_leaf);
            }
        }
        // If no merge is possible the partition stays as is this cycle.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn volume(b: &Bounds) -> f64 {
        b.widths().iter().product()
    }

    #[test]
    fn initial_partition_counts_and_covers() {
        for n in [1usize, 2, 4, 8, 16] {
            let t = BspTree::new(Bounds::unit(3), n);
            let leaves = t.leaves();
            assert_eq!(leaves.len(), n);
            let total: f64 = leaves.iter().map(|&l| volume(t.bounds_of(l))).sum();
            assert!((total - 1.0).abs() < 1e-12, "n={n}: total volume {total}");
        }
    }

    #[test]
    fn split_halves_a_cell() {
        let mut t = BspTree::new(Bounds::unit(2), 1);
        let (a, b) = t.split(0);
        assert!((volume(t.bounds_of(a)) - 0.5).abs() < 1e-12);
        assert!((volume(t.bounds_of(b)) - 0.5).abs() < 1e-12);
        assert_eq!(t.leaves().len(), 2);
    }

    #[test]
    fn merge_restores_parent() {
        let mut t = BspTree::new(Bounds::unit(2), 1);
        t.split(0);
        assert!(t.merge(0));
        let leaves = t.leaves();
        assert_eq!(leaves, vec![0]);
    }

    #[test]
    fn evolve_keeps_leaf_count_and_coverage() {
        let mut t = BspTree::new(Bounds::unit(2), 8);
        for round in 0..20 {
            let leaves = t.leaves();
            // Fake scores: prefer cells near the origin corner.
            let scores: Vec<f64> = leaves
                .iter()
                .map(|&l| {
                    let b = t.bounds_of(l);
                    -(b.center().iter().map(|c| c * c).sum::<f64>())
                })
                .collect();
            t.evolve(&leaves, &scores);
            let leaves = t.leaves();
            assert_eq!(leaves.len(), 8, "round {round}");
            let total: f64 = leaves.iter().map(|&l| volume(t.bounds_of(l))).sum();
            assert!((total - 1.0).abs() < 1e-9, "round {round}: coverage {total}");
        }
        // After repeated evolution the smallest cell should be near the
        // favored corner and much smaller than the largest.
        let leaves = t.leaves();
        let smallest = leaves
            .iter()
            .min_by(|&&a, &&b| volume(t.bounds_of(a)).total_cmp(&volume(t.bounds_of(b))))
            .copied()
            .unwrap();
        let c = t.bounds_of(smallest).center();
        assert!(c.iter().all(|&v| v < 0.6), "intensified cell center {c:?}");
    }

    #[test]
    fn evolve_with_single_leaf_is_noop() {
        let mut t = BspTree::new(Bounds::unit(2), 1);
        t.evolve(&t.leaves(), &[1.0]);
        assert_eq!(t.leaves().len(), 1);
    }
}
