//! Quickstart: optimize a benchmark function with one of the paper's
//! parallel BO algorithms and inspect the run record.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pbo::core::algorithms::{run_algorithm, AlgorithmKind};
use pbo::core::budget::Budget;
use pbo::problems::{Problem, SyntheticFn};

fn main() {
    // The 12-d Ackley instance of the paper (Table 1).
    let problem = SyntheticFn::ackley(12);

    // Paper protocol: 20 virtual minutes, 10 s per simulation, batch of
    // 4 candidates per cycle, initial design of 16 × 4 points.
    let budget = Budget::paper(4);

    println!(
        "optimizing {} over [{}, {}]^{} with KB-q-EGO (q = 4)…",
        problem.name(),
        problem.lower()[0],
        problem.upper()[0],
        problem.dim()
    );

    let record = run_algorithm(AlgorithmKind::KbQEgo, &problem, &budget, 42);

    let (fit, acq, sim) = record.time_split();
    println!("cycles completed        : {}", record.n_cycles());
    println!("simulations (DoE incl.) : {}", record.n_simulations());
    println!("best objective value    : {:.4}", record.best_y());
    println!("virtual time split      : fit {fit:.0} s | acquisition {acq:.0} s | simulation {sim:.0} s");

    // The best-so-far trace is what the paper's Figs. 3–7 plot.
    let trace = record.best_trace();
    for checkpoint in [0, trace.len() / 4, trace.len() / 2, trace.len() - 1] {
        println!("best after {:>4} evaluations: {:.4}", checkpoint + 1, trace[checkpoint]);
    }
}
