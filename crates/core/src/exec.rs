//! Parallel batch evaluation — the MPI4Py worker pool of the paper,
//! as a scoped-thread fan-out.
//!
//! The candidates of one cycle are evaluated concurrently. The paper maps
//! one MPI rank per batch element; here the fan-out is capped at the
//! machine's available parallelism, with each worker draining a contiguous
//! chunk of the batch, so a q = 64 scalability sweep does not spawn 64 OS
//! threads on an 8-core box. The virtual clock is charged by the *engine*
//! (fixed 10 s + dispatch overhead), not here: this module only runs the
//! real Rust simulator, whose actual speed is irrelevant to the protocol.
//!
//! Two entry points:
//!
//! - [`evaluate_batch`] — the happy-path fan-out (panics propagate,
//!   values land unchecked); kept for callers that evaluate trusted
//!   closed-form problems.
//! - [`evaluate_batch_ft`] — the fault-tolerant pool: per-point
//!   [`std::panic::catch_unwind`] isolation, NaN/Inf quarantine, bounded
//!   retry with exponential backoff and a per-attempt timeout. All fault
//!   handling is charged in **virtual seconds** (retries and backoff
//!   waits serialize on the failing rank; the batch's wall time is the
//!   max over ranks, exactly the paper's MPI accounting), so injected
//!   faults change reported evaluation budgets, never host wall-clock.
//!   With a healthy problem its values are bit-identical to
//!   [`evaluate_batch`].

use crate::observe::{Event, Observer};
use crate::record::FaultCounters;
use pbo_problems::{eval_min, Problem};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Evaluate each point with the problem, in parallel when the batch has
/// more than one element. Returns minimization-oriented values.
pub fn evaluate_batch(problem: &dyn Problem, points: &[Vec<f64>]) -> Vec<f64> {
    match points.len() {
        0 => Vec::new(),
        1 => vec![eval_min(problem, &points[0])],
        n => {
            let workers = std::thread::available_parallelism()
                .map(|w| w.get())
                .unwrap_or(1)
                .min(n);
            let mut out = vec![0.0f64; n];
            if workers <= 1 {
                for (slot, p) in out.iter_mut().zip(points) {
                    *slot = eval_min(problem, p);
                }
                return out;
            }
            let per = n.div_ceil(workers);
            std::thread::scope(|s| {
                for (slots, pts) in out.chunks_mut(per).zip(points.chunks(per)) {
                    s.spawn(move || {
                        for (slot, p) in slots.iter_mut().zip(pts) {
                            *slot = eval_min(problem, p);
                        }
                    });
                }
            });
            out
        }
    }
}

/// Retry/timeout policy of the fault-tolerant executor. Durations are
/// **virtual seconds** (the paper's simulator-time currency), not host
/// time.
#[derive(Debug, Clone, Copy)]
pub struct FtPolicy {
    /// Re-attempts allowed per point after the first try.
    pub max_retries: u32,
    /// Backoff charged before the first retry \[virtual seconds\].
    pub backoff_base: f64,
    /// Multiplier applied to the backoff after each retry.
    pub backoff_factor: f64,
    /// Per-attempt virtual-time cap: an attempt whose simulation time
    /// (nominal + straggler delay) exceeds this is killed at the cap
    /// and counted as a timeout. `f64::INFINITY` disables the cap.
    pub timeout_secs: f64,
    /// Host fan-out override (`None` = available parallelism). Results
    /// are identical for every setting; this exists so the determinism
    /// suite can force 1 vs N workers through the chunked fan-out.
    pub eval_workers: Option<usize>,
}

impl Default for FtPolicy {
    fn default() -> Self {
        FtPolicy {
            max_retries: 2,
            backoff_base: 1.0,
            backoff_factor: 2.0,
            timeout_secs: f64::INFINITY,
            eval_workers: None,
        }
    }
}

/// Outcome of one batch element under the fault-tolerant executor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointOutcome {
    /// Minimization-oriented value; `None` when every attempt failed.
    pub value: Option<f64>,
    /// Virtual seconds this point's rank consumed (all attempts,
    /// straggler delays, backoff waits, timeout charges).
    pub virtual_secs: f64,
    /// Attempts performed (≥ 1).
    pub attempts: u32,
    /// Faults this point absorbed.
    pub faults: FaultCounters,
}

/// Full report of one fault-tolerant batch evaluation.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Per-point outcomes, in input order.
    pub outcomes: Vec<PointOutcome>,
}

impl BatchReport {
    /// Aggregated fault counters over the batch.
    pub fn counters(&self) -> FaultCounters {
        let mut total = FaultCounters::default();
        for o in &self.outcomes {
            total.merge(&o.faults);
        }
        total
    }

    /// Virtual wall time of the batch: the paper maps one MPI rank per
    /// batch element, so the pool finishes when the slowest rank does.
    pub fn max_rank_secs(&self) -> f64 {
        self.outcomes.iter().map(|o| o.virtual_secs).fold(0.0, f64::max)
    }
}

/// Evaluate one point with isolation, quarantine, retry and timeout.
/// `sim_seconds` is the nominal virtual cost of one healthy attempt.
pub fn eval_point_ft(
    problem: &dyn Problem,
    x: &[f64],
    sim_seconds: f64,
    policy: &FtPolicy,
) -> PointOutcome {
    let maximize = problem.maximize();
    let mut faults = FaultCounters::default();
    let mut secs = 0.0f64;
    let mut backoff = policy.backoff_base;
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        let attempt_result = catch_unwind(AssertUnwindSafe(|| problem.eval_effect(x)));
        let mut ok = None;
        match attempt_result {
            Err(_) => {
                // Crashed rank: it consumed its simulation slot before
                // dying (capped by the timeout like any attempt).
                faults.panics += 1;
                secs += sim_seconds.min(policy.timeout_secs);
            }
            Ok(effect) => {
                let extra = effect.extra_virtual_secs.max(0.0);
                let cost = sim_seconds + extra;
                if cost > policy.timeout_secs {
                    // The master kills the rank at the cap; the value
                    // never arrives.
                    faults.timeouts += 1;
                    secs += policy.timeout_secs;
                } else {
                    if extra > 0.0 {
                        faults.stragglers += 1;
                    }
                    secs += cost;
                    let v = if maximize { -effect.value } else { effect.value };
                    if v.is_finite() {
                        ok = Some(v);
                    } else if v.is_nan() {
                        faults.nan_quarantined += 1;
                    } else {
                        faults.inf_quarantined += 1;
                    }
                }
            }
        }
        let exhausted = ok.is_none() && attempts > policy.max_retries;
        if ok.is_some() || exhausted {
            // Everything beyond one healthy nominal attempt is fault
            // overhead (a fully failed point still "should have" cost
            // one simulation, so the same baseline applies).
            faults.virtual_secs_lost = (secs - sim_seconds).max(0.0);
            return PointOutcome { value: ok, virtual_secs: secs, attempts, faults };
        }
        faults.retries += 1;
        secs += backoff;
        backoff *= policy.backoff_factor;
    }
}

/// Fault-tolerant parallel batch evaluation. Per-point outcomes are a
/// pure function of `(problem, point, policy)` — independent of worker
/// count and thread schedule — so runs replay identically on any host.
pub fn evaluate_batch_ft(
    problem: &dyn Problem,
    points: &[Vec<f64>],
    sim_seconds: f64,
    policy: &FtPolicy,
) -> BatchReport {
    let n = points.len();
    if n == 0 {
        return BatchReport { outcomes: Vec::new() };
    }
    let placeholder = PointOutcome {
        value: None,
        virtual_secs: 0.0,
        attempts: 0,
        faults: FaultCounters::default(),
    };
    let mut outcomes = vec![placeholder; n];
    let workers = policy
        .eval_workers
        .unwrap_or_else(|| std::thread::available_parallelism().map(|w| w.get()).unwrap_or(1))
        .max(1)
        .min(n);
    if workers <= 1 || n == 1 {
        for (slot, p) in outcomes.iter_mut().zip(points) {
            *slot = eval_point_ft(problem, p, sim_seconds, policy);
        }
    } else {
        let per = n.div_ceil(workers);
        std::thread::scope(|s| {
            for (slots, pts) in outcomes.chunks_mut(per).zip(points.chunks(per)) {
                s.spawn(move || {
                    for (slot, p) in slots.iter_mut().zip(pts) {
                        *slot = eval_point_ft(problem, p, sim_seconds, policy);
                    }
                });
            }
        });
    }
    BatchReport { outcomes }
}

/// [`evaluate_batch_ft`] plus observer notification: after the batch
/// completes, a [`Event::PointFaulted`] is emitted for every point that
/// absorbed any fault or needed more than one attempt — in **input
/// order**, on the caller's thread. Worker threads never touch the
/// observer, so sinks need not be `Sync` and the event stream is
/// deterministic regardless of the fan-out schedule.
pub fn evaluate_batch_ft_observed(
    problem: &dyn Problem,
    points: &[Vec<f64>],
    sim_seconds: f64,
    policy: &FtPolicy,
    observer: Option<&mut (dyn Observer + '_)>,
) -> BatchReport {
    let report = evaluate_batch_ft(problem, points, sim_seconds, policy);
    if let Some(obs) = observer {
        if obs.enabled() {
            for (index, o) in report.outcomes.iter().enumerate() {
                if o.attempts > 1 || o.faults.any() {
                    obs.on_event(&Event::PointFaulted {
                        index,
                        attempts: o.attempts,
                        recovered: o.value.is_some(),
                        faults: o.faults,
                    });
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbo_problems::fault::{silence_injected_panics, FaultPlan, FaultyProblem};
    use pbo_problems::SyntheticFn;

    #[test]
    fn observed_wrapper_emits_faulted_points_in_input_order() {
        silence_injected_panics();
        let inner = SyntheticFn::ackley(3);
        let plan = FaultPlan { p_panic: 1.0, ..FaultPlan::none(7) };
        let p = FaultyProblem::new(&inner, plan);
        let pts = grid(4, 3);
        let mut sink = crate::observe::CollectingObserver::new();
        let report =
            evaluate_batch_ft_observed(&p, &pts, 10.0, &FtPolicy::default(), Some(&mut sink));
        assert_eq!(sink.events.len(), 4, "every point panics, every point reports");
        for (i, ev) in sink.events.iter().enumerate() {
            match ev {
                Event::PointFaulted { index, attempts, recovered, faults } => {
                    assert_eq!(*index, i);
                    assert_eq!(*attempts, 3);
                    assert!(!recovered);
                    assert_eq!(faults.panics, 3);
                }
                other => panic!("unexpected event {other:?}"),
            }
        }
        // The wrapper returns the same report as the plain executor.
        let plain = evaluate_batch_ft(&p, &pts, 10.0, &FtPolicy::default());
        assert_eq!(report.outcomes, plain.outcomes);
        // Healthy evaluations stay silent.
        let mut sink = crate::observe::CollectingObserver::new();
        evaluate_batch_ft_observed(&inner, &pts, 10.0, &FtPolicy::default(), Some(&mut sink));
        assert!(sink.events.is_empty());
    }

    #[test]
    fn matches_sequential_evaluation() {
        let p = SyntheticFn::ackley(5);
        let pts: Vec<Vec<f64>> = (0..7)
            .map(|i| (0..5).map(|j| (i * 5 + j) as f64 * 0.1 - 1.0).collect())
            .collect();
        let par = evaluate_batch(&p, &pts);
        for (v, x) in par.iter().zip(&pts) {
            assert_eq!(*v, p.eval(x));
        }
    }

    #[test]
    fn flips_sign_for_maximizers() {
        let p = pbo_problems::UphesProblem::maizeret(2);
        let pts = vec![vec![0.45; 12], vec![0.2; 12]];
        let vals = evaluate_batch(&p, &pts);
        assert_eq!(vals[0], -p.eval(&pts[0]));
        assert_eq!(vals[1], -p.eval(&pts[1]));
    }

    #[test]
    fn empty_batch_ok() {
        let p = SyntheticFn::ackley(3);
        assert!(evaluate_batch(&p, &[]).is_empty());
    }

    #[test]
    fn batch_larger_than_core_count_matches_sequential() {
        // More candidates than any plausible worker count: the chunked
        // fan-out must still cover every slot exactly once.
        let p = SyntheticFn::ackley(4);
        let pts: Vec<Vec<f64>> = (0..130)
            .map(|i| (0..4).map(|j| ((i * 7 + j * 3) % 40) as f64 * 0.05 - 1.0).collect())
            .collect();
        let par = evaluate_batch(&p, &pts);
        for (v, x) in par.iter().zip(&pts) {
            assert_eq!(*v, p.eval(x));
        }
    }

    fn grid(n: usize, d: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| (0..d).map(|j| ((i * 13 + j * 5) % 29) as f64 * 0.03).collect())
            .collect()
    }

    #[test]
    fn ft_zero_fault_path_is_bit_identical_to_plain() {
        let p = SyntheticFn::schwefel(4);
        let pts = grid(23, 4);
        let plain = evaluate_batch(&p, &pts);
        for workers in [Some(1), Some(3), None] {
            let policy = FtPolicy { eval_workers: workers, ..FtPolicy::default() };
            let report = evaluate_batch_ft(&p, &pts, 10.0, &policy);
            let ft: Vec<f64> = report.outcomes.iter().map(|o| o.value.unwrap()).collect();
            assert_eq!(ft, plain);
            assert!(!report.counters().any());
            assert_eq!(report.max_rank_secs(), 10.0);
            assert!(report.outcomes.iter().all(|o| o.attempts == 1));
        }
    }

    #[test]
    fn ft_isolates_panics_and_retries() {
        silence_injected_panics();
        let inner = SyntheticFn::ackley(3);
        // Panic on every attempt: each point exhausts 1 + max_retries
        // attempts and ends up value-less, but the pool survives.
        let plan = FaultPlan { p_panic: 1.0, ..FaultPlan::none(7) };
        let p = FaultyProblem::new(&inner, plan);
        let pts = grid(5, 3);
        let policy = FtPolicy { max_retries: 2, backoff_base: 1.0, backoff_factor: 2.0, ..FtPolicy::default() };
        let report = evaluate_batch_ft(&p, &pts, 10.0, &policy);
        let c = report.counters();
        assert_eq!(c.panics, 15, "5 points x 3 attempts");
        assert_eq!(c.retries, 10);
        assert!(report.outcomes.iter().all(|o| o.value.is_none() && o.attempts == 3));
        // Per rank: 3 sims + backoffs 1 + 2 = 33 virtual seconds, of
        // which everything beyond the nominal 10 is lost.
        for o in &report.outcomes {
            assert!((o.virtual_secs - 33.0).abs() < 1e-12);
            assert!((o.faults.virtual_secs_lost - 23.0).abs() < 1e-12);
        }
        assert_eq!(p.injection_log().panics, 15);
    }

    #[test]
    fn ft_quarantines_nan_and_inf_then_recovers() {
        // Fault only on attempt 0 for points whose first decision is
        // NaN/Inf; the retry is healthy, so every point recovers with a
        // finite value matching the clean problem.
        let inner = SyntheticFn::rosenbrock(2);
        let plan = FaultPlan { p_nan: 0.3, p_inf: 0.3, ..FaultPlan::none(41) };
        let p = FaultyProblem::new(&inner, plan);
        let pts = grid(40, 2);
        let policy = FtPolicy { max_retries: 6, backoff_base: 0.5, backoff_factor: 1.0, ..FtPolicy::default() };
        let report = evaluate_batch_ft(&p, &pts, 10.0, &policy);
        let c = report.counters();
        let log = p.injection_log();
        assert!(log.nans + log.infs > 0, "plan should have fired at 60% rate");
        assert_eq!(c.nan_quarantined, log.nans);
        assert_eq!(c.inf_quarantined, log.infs);
        // Every quarantined attempt triggered a retry except the final
        // attempt of a point that exhausted its budget entirely.
        let exhausted = report.outcomes.iter().filter(|o| o.value.is_none()).count() as u64;
        assert_eq!(c.retries + exhausted, log.nans + log.infs);
        for (o, x) in report.outcomes.iter().zip(&pts) {
            if let Some(v) = o.value {
                assert_eq!(v, inner.eval(x), "recovered value must be clean");
            } else {
                assert_eq!(o.attempts, 7, "only a fully faulted point may fail");
            }
        }
        // Lost time: each failed attempt re-costs a sim, each retry a
        // 0.5 s backoff, minus the nominal baseline of exhausted ranks.
        let expect = c.failed_attempts() as f64 * 10.0 + c.retries as f64 * 0.5
            - exhausted as f64 * 10.0;
        assert!((c.virtual_secs_lost - expect).abs() < 1e-9);
    }

    #[test]
    fn ft_timeout_caps_straggler_charges() {
        let inner = SyntheticFn::ackley(2);
        // Always straggle with delays up to 30 s; a 25 s cap kills the
        // long ones (10 + delay > 25 ⇔ delay > 15, ~half the draws).
        let plan = FaultPlan { p_straggle: 1.0, max_straggle_secs: 30.0, ..FaultPlan::none(13) };
        let p = FaultyProblem::new(&inner, plan);
        let pts = grid(30, 2);
        let policy = FtPolicy { max_retries: 8, backoff_base: 0.0, backoff_factor: 1.0, timeout_secs: 25.0, ..FtPolicy::default() };
        let report = evaluate_batch_ft(&p, &pts, 10.0, &policy);
        let c = report.counters();
        assert!(c.timeouts > 0, "some draws must exceed the cap");
        assert!(c.stragglers > 0, "some draws must fit under the cap");
        // No rank is ever charged more than the cap per attempt.
        for o in &report.outcomes {
            assert!(o.virtual_secs <= 25.0 * o.attempts as f64 + 1e-12);
        }
        // Every point eventually lands a sub-cap straggle and succeeds.
        assert!(report.outcomes.iter().all(|o| o.value.is_some()));
    }

    #[test]
    fn ft_outcomes_independent_of_worker_count() {
        silence_injected_panics();
        let inner = SyntheticFn::schwefel(3);
        let plan = FaultPlan::uniform(99, 0.4);
        let pts = grid(17, 3);
        let runs: Vec<Vec<PointOutcome>> = [1usize, 2, 8]
            .iter()
            .map(|&w| {
                let p = FaultyProblem::new(&inner, plan);
                let policy = FtPolicy { eval_workers: Some(w), ..FtPolicy::default() };
                evaluate_batch_ft(&p, &pts, 10.0, &policy).outcomes
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[0], runs[2]);
    }
}
