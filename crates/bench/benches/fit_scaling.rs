//! Fitting hot-path scaling: pre-PR vs workspace-backed MLL evaluation,
//! full fits, warm refits, and batched prediction.
//!
//! Three evaluation paths are measured:
//! - `*_prepr`: a faithful replica of the seed's `mll_and_grad` — serial
//!   entry-at-a-time kernel assembly, fresh allocations per call, and
//!   the explicit per-column `K_y⁻¹` (this file reproduces the removed
//!   code so the recorded baseline is the true pre-PR cost, not the
//!   already-upgraded shared kernels);
//! - `*_naive`: the in-repo reference `pbo_gp::fit::mll_and_grad`,
//!   which still forms `K_y⁻¹` explicitly but already benefits from this
//!   overhaul's parallel assembly and multi-RHS inverse;
//! - `*_workspace`: the shipping cached-distance, inverse-free path.
//!
//! `fit_prepr` drives the same multi-start L-BFGS loop through the
//! replica, so the `fit_prepr`-vs-`fit_workspace` ratio is the
//! end-to-end speedup of the overhaul on the mll-dominated full fit.
//! Results are recorded in `BENCH_fit.json` at the repo root.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pbo_gp::fit::{fit, mll_and_grad, refit_warm, unpack, FitConfig};
use pbo_gp::kernel::{Kernel, KernelType};
use pbo_gp::workspace::{mll_and_grad_ws, mll_value_ws, FitWorkspace};
use pbo_gp::GaussianProcess;
use pbo_linalg::vec_ops::dot;
use pbo_linalg::{Cholesky, Matrix};
use pbo_opt::lbfgs::LbfgsConfig;
use pbo_opt::{Bounds, FnGradObjective};
use pbo_sampling::{lhs, SeedStream};
use rand::Rng;

const DIM: usize = 12;

/// Seconds-scale smoke configuration for CI (`PBO_BENCH_SMOKE=1`).
fn smoke() -> bool {
    std::env::var_os("PBO_BENCH_SMOKE").is_some_and(|v| v != "0")
}

fn sizes(full: &'static [usize]) -> &'static [usize] {
    if smoke() {
        &full[..1]
    } else {
        full
    }
}

fn dataset(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
    let seeds = SeedStream::new(seed);
    let mut rng = seeds.fork_named("fit-scaling-data").rng();
    let pts = lhs::latin_hypercube(&mut rng, n, DIM);
    let mut x = Matrix::zeros(0, DIM);
    let mut y = Vec::with_capacity(n);
    for p in &pts {
        y.push(p.iter().map(|v| (3.0 * v).sin() + v * v).sum::<f64>());
        x.push_row(p).unwrap();
    }
    (x, y)
}

fn standardized(y: &[f64]) -> Vec<f64> {
    let m = pbo_linalg::vec_ops::mean(y);
    let s = pbo_linalg::vec_ops::variance(y).sqrt().max(1e-8);
    y.iter().map(|v| (v - m) / s).collect()
}

fn mid_params() -> Vec<f64> {
    let mut p = vec![(0.5f64).ln(); DIM];
    p.push(0.0);
    p.push((1e-4f64).ln());
    p
}

/// Faithful replica of the seed's pre-overhaul `mll_and_grad`: serial
/// O(n²) kernel assembly recomputing every pairwise distance, a fresh
/// allocation per matrix, the explicit `K_y⁻¹` built one column at a
/// time through scalar triangular solves, and the O(n²d) gradient
/// contraction recomputing distances a second time. Byte-for-byte the
/// arithmetic the overhaul replaced.
fn mll_and_grad_pre(
    family: KernelType,
    x: &Matrix,
    y_std: &[f64],
    params: &[f64],
) -> Option<(f64, Vec<f64>)> {
    let n = x.rows();
    let d = x.cols();
    let (kernel, noise) = unpack(family, params);
    // Pre-PR Kernel::matrix: serial, entry-at-a-time with mirroring.
    let mut k_kernel = Matrix::zeros(n, n);
    for i in 0..n {
        k_kernel[(i, i)] = kernel.outputscale;
        for j in 0..i {
            let v = kernel.eval(x.row(i), x.row(j));
            k_kernel[(i, j)] = v;
            k_kernel[(j, i)] = v;
        }
    }
    let mut ky = k_kernel.clone();
    ky.add_diag(noise);
    let chol = Cholesky::factor(&ky).ok()?;

    let ones = vec![1.0; n];
    let kinv_ones = chol.solve(&ones).ok()?;
    let kinv_y = chol.solve(y_std).ok()?;
    let denom = dot(&ones, &kinv_ones).max(1e-300);
    let trend = dot(&ones, &kinv_y) / denom;
    let r: Vec<f64> = y_std.iter().map(|v| v - trend).collect();
    let alpha: Vec<f64> =
        kinv_y.iter().zip(&kinv_ones).map(|(a, b)| a - trend * b).collect();
    let mll = -0.5 * dot(&r, &alpha)
        - 0.5 * chol.log_det()
        - 0.5 * n as f64 * (2.0 * std::f64::consts::PI).ln();

    // Pre-PR Cholesky::inverse: one pair of scalar triangular solves per
    // column of the identity.
    let mut kinv = Matrix::identity(n);
    let mut col = vec![0.0; n];
    for j in 0..n {
        for i in 0..n {
            col[i] = kinv[(i, j)];
        }
        chol.solve_lower_in_place(&mut col);
        chol.solve_lower_t_in_place(&mut col);
        for i in 0..n {
            kinv[(i, j)] = col[i];
        }
    }

    let mut grad = vec![0.0; d + 2];
    let inv_ls2: Vec<f64> =
        kernel.lengthscales.iter().map(|l| 1.0 / (l * l)).collect();
    for a in 0..n {
        for b in 0..a {
            let w = alpha[a] * alpha[b] - kinv[(a, b)];
            let ra = x.row(a);
            let rb = x.row(b);
            let rdist = kernel.scaled_dist(ra, rb);
            let gf = kernel.outputscale * family.grad_factor(rdist);
            for j in 0..d {
                let dj = ra[j] - rb[j];
                grad[j] += w * gf * dj * dj * inv_ls2[j];
            }
        }
    }
    let mut g_os = 0.0;
    for a in 0..n {
        for b in 0..n {
            g_os += (alpha[a] * alpha[b] - kinv[(a, b)]) * k_kernel[(a, b)];
        }
    }
    grad[d] = 0.5 * g_os;
    let mut g_n = 0.0;
    for a in 0..n {
        g_n += alpha[a] * alpha[a] - kinv[(a, a)];
    }
    grad[d + 1] = 0.5 * noise * g_n;

    Some((mll, grad))
}

/// One MLL value+gradient evaluation — pre-PR replica, current naive
/// reference, and workspace paths — plus the gradient-free workspace
/// value (the multistart scoring path).
fn bench_mll_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("fit_scaling");
    let (meas, warm) = if smoke() { (150, 30) } else { (1000, 200) };
    g.measurement_time(std::time::Duration::from_millis(meas));
    g.warm_up_time(std::time::Duration::from_millis(warm));
    g.sample_size(10);
    for &n in sizes(&[64usize, 128, 256, 512]) {
        let (x, y) = dataset(n, 2);
        let y_std = standardized(&y);
        let params = mid_params();
        // The replica must agree with the in-repo reference (which the
        // workspace path is property-tested against) — guard the
        // recorded baseline against drift.
        {
            let (v_pre, g_pre) =
                mll_and_grad_pre(KernelType::Matern52, &x, &y_std, &params).unwrap();
            let (v_ref, g_ref) =
                mll_and_grad(KernelType::Matern52, &x, &y_std, &params).unwrap();
            assert!((v_pre - v_ref).abs() <= 1e-9 * (1.0 + v_ref.abs()));
            for (a, b) in g_pre.iter().zip(&g_ref) {
                assert!((a - b).abs() <= 1e-9 * (1.0 + b.abs()));
            }
        }
        g.bench_with_input(BenchmarkId::new("mll_grad_prepr", n), &n, |b, _| {
            b.iter(|| mll_and_grad_pre(KernelType::Matern52, &x, &y_std, &params).unwrap().0)
        });
        g.bench_with_input(BenchmarkId::new("mll_grad_naive", n), &n, |b, _| {
            b.iter(|| mll_and_grad(KernelType::Matern52, &x, &y_std, &params).unwrap().0)
        });
        let mut ws = FitWorkspace::new();
        ws.prepare(&x);
        g.bench_with_input(BenchmarkId::new("mll_grad_workspace", n), &n, |b, _| {
            b.iter(|| {
                mll_and_grad_ws(KernelType::Matern52, &mut ws, &y_std, &params)
                    .unwrap()
                    .0
            })
        });
        g.bench_with_input(BenchmarkId::new("mll_value_workspace", n), &n, |b, _| {
            b.iter(|| mll_value_ws(KernelType::Matern52, &mut ws, &y_std, &params).unwrap())
        });
    }
    g.finish();
}

/// The pre-overhaul full fit: the same start schedule and L-BFGS budget
/// as `fit`, driven through the pre-PR replica objective (whose `value`
/// also paid for the full gradient, exactly as the seed's `NegMll` did).
fn fit_pre(x: &Matrix, y: &[f64], cfg: &FitConfig, seeds: &mut SeedStream) -> f64 {
    let d = x.cols();
    let y_std = standardized(y);
    let family = cfg.family;
    let obj = FnGradObjective::new(
        d + 2,
        |p: &[f64]| match mll_and_grad_pre(family, x, &y_std, p) {
            Some((v, _)) => -v,
            None => f64::INFINITY,
        },
        |p: &[f64]| match mll_and_grad_pre(family, x, &y_std, p) {
            Some((v, g)) => (-v, g.into_iter().map(|gi| -gi).collect()),
            None => (f64::INFINITY, vec![0.0; p.len()]),
        },
    );
    let mut lo = vec![cfg.log_ls_bounds.0; d];
    let mut hi = vec![cfg.log_ls_bounds.1; d];
    lo.push(cfg.log_os_bounds.0);
    hi.push(cfg.log_os_bounds.1);
    lo.push(cfg.log_noise_bounds.0);
    hi.push(cfg.log_noise_bounds.1);
    let bounds = Bounds::new(lo, hi);
    let lbfgs = LbfgsConfig { max_iters: cfg.max_iters, ..LbfgsConfig::default() };
    let mut rng = seeds.fork_named("fit-starts").rng();
    let mut starts = vec![mid_params()];
    for _ in 0..cfg.restarts {
        let mut p: Vec<f64> = (0..d)
            .map(|_| rng.gen_range((0.1f64).ln()..(2.0f64).ln()))
            .collect();
        p.push(0.0);
        p.push(rng.gen_range((1e-6f64).ln()..(1e-2f64).ln()));
        starts.push(p);
    }
    let mut best = f64::INFINITY;
    for s in &starts {
        let mut s = s.clone();
        bounds.clamp(&mut s);
        let r = pbo_opt::lbfgs::minimize(&obj, &bounds, &s, &lbfgs);
        if r.value.is_finite() && r.value < best {
            best = r.value;
        }
    }
    -best
}

/// Full multi-start fit, pre-overhaul path vs the shipping workspace
/// path, with identical start schedules and iteration budgets.
fn bench_full_fit(c: &mut Criterion) {
    let mut g = c.benchmark_group("fit_scaling");
    let (meas, warm) = if smoke() { (150, 30) } else { (2000, 200) };
    g.measurement_time(std::time::Duration::from_millis(meas));
    g.warm_up_time(std::time::Duration::from_millis(warm));
    g.sample_size(10);
    for &n in sizes(&[64usize, 128, 256]) {
        let (x, y) = dataset(n, 3);
        let cfg = FitConfig { restarts: 1, max_iters: 20, ..FitConfig::default() };
        g.bench_with_input(BenchmarkId::new("fit_prepr", n), &n, |b, _| {
            b.iter(|| {
                let mut seeds = SeedStream::new(9);
                fit_pre(&x, &y, &cfg, &mut seeds)
            })
        });
        g.bench_with_input(BenchmarkId::new("fit_workspace", n), &n, |b, _| {
            b.iter(|| {
                let mut seeds = SeedStream::new(9);
                fit(&x, &y, &cfg, None, &mut seeds).unwrap().1.mll
            })
        });
    }
    g.finish();
}

/// Reduced-budget warm refit (the per-cycle partial fit).
fn bench_refit_warm(c: &mut Criterion) {
    let mut g = c.benchmark_group("fit_scaling");
    let (meas, warm) = if smoke() { (150, 30) } else { (1000, 200) };
    g.measurement_time(std::time::Duration::from_millis(meas));
    g.warm_up_time(std::time::Duration::from_millis(warm));
    g.sample_size(10);
    for &n in sizes(&[64usize, 128, 256]) {
        let (x, y) = dataset(n, 4);
        let cfg = FitConfig { restarts: 0, warm_iters: 10, ..FitConfig::default() };
        let mut seeds = SeedStream::new(13);
        let (gp, _) = fit(&x, &y, &cfg, None, &mut seeds).unwrap();
        g.bench_with_input(BenchmarkId::new("refit_warm", n), &n, |b, _| {
            b.iter(|| {
                let mut seeds = SeedStream::new(17);
                refit_warm(&gp, &cfg, &mut seeds).unwrap().1.mll
            })
        });
    }
    g.finish();
}

/// Cycle-amortized posterior maintenance: `GaussianProcess::update`
/// (extend the cached Cholesky factor by the q new rows, O(n²q))
/// vs the engine's pre-PR non-full-cycle floor — a frozen-hyperparameter
/// rebuild that refactors the whole (n+q)×(n+q) system from scratch
/// (O(n³)). The `update_vs_refit` headline in `BENCH_fit.json` is the
/// `gp_rebuild`/`gp_update` ratio at n=512, q=8.
fn bench_update_vs_refit(c: &mut Criterion) {
    let mut g = c.benchmark_group("fit_scaling");
    let (meas, warm) = if smoke() { (150, 30) } else { (1500, 200) };
    g.measurement_time(std::time::Duration::from_millis(meas));
    g.warm_up_time(std::time::Duration::from_millis(warm));
    g.sample_size(10);
    let qs: &[usize] = if smoke() { &[8] } else { &[4, 8, 16] };
    for &n in sizes(&[256usize, 512, 1024]) {
        for &q in qs {
            let (x_all, y_all) = dataset(n + q, 6);
            let x = Matrix::from_fn(n, DIM, |i, j| x_all[(i, j)]);
            let kernel = Kernel::new(KernelType::Matern52, DIM);
            let base = GaussianProcess::new(x, &y_all[..n], kernel.clone(), 1e-4).unwrap();
            let new_xs: Vec<Vec<f64>> =
                (n..n + q).map(|i| x_all.row(i).to_vec()).collect();
            let new_ys = &y_all[n..];
            // Equivalence guard: the exact-extension fast path must
            // predict what the tolerance-level `condition_on` extension
            // predicts (same frozen hyperparameters and standardization;
            // `GaussianProcess::new` re-standardizes, so it is the cost
            // baseline here, not the equivalence reference).
            {
                let upd = base.update(&new_xs, new_ys).unwrap();
                let cond = base.condition_on(&new_xs, new_ys).unwrap();
                let probe = vec![0.4; DIM];
                let (mu, vu) = upd.predict(&probe);
                let (mr, vr) = cond.predict(&probe);
                assert!((mu - mr).abs() <= 1e-8 * (1.0 + mr.abs()), "{mu} vs {mr}");
                assert!((vu - vr).abs() <= 1e-8 * (1.0 + vr.abs()), "{vu} vs {vr}");
            }
            let id = format!("{n}q{q}");
            g.bench_with_input(BenchmarkId::new("gp_update", &id), &n, |b, _| {
                b.iter(|| base.update(&new_xs, new_ys).unwrap().n())
            });
            g.bench_with_input(BenchmarkId::new("gp_rebuild", &id), &n, |b, _| {
                b.iter(|| {
                    GaussianProcess::new(x_all.clone(), &y_all, kernel.clone(), 1e-4)
                        .unwrap()
                        .n()
                })
            });
        }
    }
    g.finish();
}

/// Dense Cholesky factorization past `BIT_EXACT_MAX_N`: the cache-blocked
/// right-looking path whose TRSM/SYRK sweeps fan out over
/// `par_map_workers`. On a single-core host this measures the blocked
/// serial cost; re-record on a multi-core host for the parallel speedup.
fn bench_chol_factor(c: &mut Criterion) {
    let mut g = c.benchmark_group("fit_scaling");
    let (meas, warm) = if smoke() { (150, 30) } else { (2000, 200) };
    g.measurement_time(std::time::Duration::from_millis(meas));
    g.warm_up_time(std::time::Duration::from_millis(warm));
    g.sample_size(10);
    for &n in sizes(&[512usize, 1024]) {
        let (x, _) = dataset(n, 7);
        let kernel = Kernel::new(KernelType::Matern52, DIM);
        let mut a = kernel.matrix(&x);
        a.add_diag(1e-4);
        g.bench_with_input(BenchmarkId::new("chol_blocked", n), &n, |b, _| {
            b.iter(|| Cholesky::factor(&a).unwrap().log_det())
        });
    }
    g.finish();
}

/// Batched prediction over a 128-point candidate set vs the per-point
/// loop it replaced.
fn bench_predict_many(c: &mut Criterion) {
    let mut g = c.benchmark_group("fit_scaling");
    let (meas, warm) = if smoke() { (150, 30) } else { (1000, 200) };
    g.measurement_time(std::time::Duration::from_millis(meas));
    g.warm_up_time(std::time::Duration::from_millis(warm));
    g.sample_size(10);
    let q = 128usize;
    for &n in sizes(&[64usize, 128, 256, 512]) {
        let (x, y) = dataset(n, 5);
        let kernel = Kernel::new(KernelType::Matern52, DIM);
        let gp = GaussianProcess::new(x, &y, kernel, 1e-4).unwrap();
        let mut rng = SeedStream::new(21).fork_named("cands").rng();
        let cands = lhs::latin_hypercube(&mut rng, q, DIM);
        let pts = Matrix::from_rows(&cands).unwrap();
        g.bench_with_input(BenchmarkId::new("predict_many_q128", n), &n, |b, _| {
            b.iter(|| gp.predict_many(&pts).0[0])
        });
        g.bench_with_input(BenchmarkId::new("predict_loop_q128", n), &n, |b, _| {
            b.iter(|| {
                let mut acc = 0.0;
                for p in &cands {
                    acc += gp.predict(p).0;
                }
                acc
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_mll_paths,
    bench_full_fit,
    bench_refit_warm,
    bench_update_vs_refit,
    bench_chol_factor,
    bench_predict_many
);
criterion_main!(benches);
