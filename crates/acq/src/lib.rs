#![allow(clippy::needless_range_loop)]

//! # pbo-acq — acquisition functions and their optimization
//!
//! The "acquisition process" layer of the paper: given a fitted GP and
//! the incumbent value, score candidate points and find the maximizer.
//!
//! - [`single`]: single-point criteria — Expected Improvement (EI),
//!   Probability of Improvement (PI) and the confidence-bound criterion
//!   (UCB in the paper's maximization convention) — with **analytic
//!   gradients** through the GP posterior, and a multistart L-BFGS
//!   maximizer mirroring BoTorch's `optimize_acqf`,
//! - [`mc`]: Monte-Carlo q-EI over a *joint* batch of `q` points using
//!   the reparameterization trick with fixed quasi-MC base samples
//!   (sample-average approximation), including the full analytic
//!   gradient through the posterior **Cholesky factor** via a
//!   reverse-mode pullback ([`pullback`]) — the piece BoTorch gets from
//!   autodiff and we derive by hand,
//! - [`pullback`]: the Cholesky reverse-mode differentiation rule.
//!
//! Convention: the whole workspace **minimizes** the objective
//! internally (the UPHES profit is negated by the problem layer), so
//! "improvement" means dropping below the incumbent `f_best`.

pub mod mc;
pub mod pullback;
pub mod single;

pub use mc::{optimize_qei, QExpectedImprovement};
pub use single::{
    optimize_single, ExpectedImprovement, ProbabilityOfImprovement, UpperConfidenceBound,
};

use pbo_gp::GaussianProcess;

/// A single-point acquisition criterion (to be **maximized**).
pub trait Acquisition: Sync {
    /// Acquisition value at `x`.
    fn value(&self, gp: &GaussianProcess, x: &[f64]) -> f64;
    /// Value and gradient at `x`.
    fn value_grad(&self, gp: &GaussianProcess, x: &[f64]) -> (f64, Vec<f64>);
    /// Short name for logs and reports.
    fn name(&self) -> &'static str;
}

/// Posterior mean/σ and their spatial gradients at a query point —
/// the shared building block of all analytic acquisition gradients.
///
/// Returned values are on the raw target scale. σ is floored at a tiny
/// positive value so downstream divisions stay finite; the gradient of
/// the floor region is zero.
pub struct PosteriorGrad {
    /// Posterior mean.
    pub mean: f64,
    /// Posterior (latent) standard deviation.
    pub sigma: f64,
    /// `∂mean/∂x`.
    pub dmean: Vec<f64>,
    /// `∂σ/∂x`.
    pub dsigma: Vec<f64>,
}

/// Compute [`PosteriorGrad`] at `x` in `O(n² + n d)`.
pub fn posterior_with_grad(gp: &GaussianProcess, x: &[f64]) -> PosteriorGrad {
    let d = gp.dim();
    debug_assert_eq!(x.len(), d);
    let kernel = gp.kernel();
    let train = gp.train_x();
    let n = train.rows();
    let (shift, scale) = gp.standardization();

    let k = kernel.cross_vec(train, x);
    let c = gp.chol().solve(&k).expect("posterior solve");
    let alpha = gp.weights();

    let mean_std = gp.trend_std() + pbo_linalg::vec_ops::dot(&k, alpha);
    let var_std =
        (kernel.prior_var() - pbo_linalg::vec_ops::dot(&k, &c)).max(1e-14);
    let sigma_std = var_std.sqrt();

    let mut dmean = vec![0.0; d];
    let mut dvar = vec![0.0; d];
    let mut buf = vec![0.0; d];
    for i in 0..n {
        kernel.grad_wrt_query(x, train.row(i), &mut buf);
        let (ai, ci) = (alpha[i], c[i]);
        for j in 0..d {
            dmean[j] += ai * buf[j];
            dvar[j] -= 2.0 * ci * buf[j];
        }
    }
    let dsigma: Vec<f64> = if var_std <= 1e-14 {
        vec![0.0; d]
    } else {
        dvar.iter().map(|v| scale * v / (2.0 * sigma_std)).collect()
    };
    PosteriorGrad {
        mean: mean_std * scale + shift,
        sigma: sigma_std * scale,
        dmean: dmean.into_iter().map(|v| v * scale).collect(),
        dsigma,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbo_gp::kernel::{Kernel, KernelType};
    use pbo_linalg::Matrix;

    fn toy_gp() -> GaussianProcess {
        let xs: Vec<f64> = (0..8).map(|i| i as f64 / 7.0).collect();
        let x = Matrix::from_rows(&xs.iter().map(|&v| vec![v, v * v]).collect::<Vec<_>>())
            .unwrap();
        let y: Vec<f64> = xs.iter().map(|&v| (5.0 * v).sin() + 2.0 * v).collect();
        let mut kernel = Kernel::new(KernelType::Matern52, 2);
        kernel.lengthscales = vec![0.3, 0.5];
        GaussianProcess::new(x, &y, kernel, 1e-6).unwrap()
    }

    #[test]
    fn posterior_grad_matches_fd() {
        let gp = toy_gp();
        for p in [[0.31, 0.22], [0.77, 0.5], [0.05, 0.9]] {
            let pg = posterior_with_grad(&gp, &p);
            let fd_mean = pbo_opt::fd_gradient(|x| gp.predict(x).0, &p, 1e-6);
            let fd_sigma = pbo_opt::fd_gradient(|x| gp.predict(x).1.sqrt(), &p, 1e-6);
            for j in 0..2 {
                assert!(
                    (pg.dmean[j] - fd_mean[j]).abs() < 1e-5 * (1.0 + fd_mean[j].abs()),
                    "dmean[{j}]: {} vs {}",
                    pg.dmean[j],
                    fd_mean[j]
                );
                assert!(
                    (pg.dsigma[j] - fd_sigma[j]).abs() < 1e-4 * (1.0 + fd_sigma[j].abs()),
                    "dsigma[{j}]: {} vs {}",
                    pg.dsigma[j],
                    fd_sigma[j]
                );
            }
            // Values agree with predict().
            let (m, v) = gp.predict(&p);
            assert!((pg.mean - m).abs() < 1e-10);
            assert!((pg.sigma - v.sqrt()).abs() < 1e-10);
        }
    }
}
