//! Offline stand-in for `serde`.
//!
//! The repo currently only *derives* `Serialize`/`Deserialize` as forward
//! declarations on record types (no serialization backend is wired up and no
//! registry access exists to pull the real crate). These marker traits plus
//! the no-op derive in `serde_derive` keep the annotations compiling; when a
//! real backend lands, swapping the path dependency for upstream serde
//! requires no source changes.

pub trait Serialize {}

pub trait Deserialize<'de>: Sized {}

/// Owned-deserialization marker, mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

pub mod de {
    pub use super::{Deserialize, DeserializeOwned};
}

pub mod ser {
    pub use super::Serialize;
}
