//! Stationary ARD covariance kernels and their log-parameter gradients.
//!
//! All kernels are of the form
//! `k(x, x') = s² · rho(r)` with `r² = Σ_j ((x_j − x'_j) / ℓ_j)²`,
//! where `s²` is the outputscale and `ℓ` the ARD lengthscales. The
//! marginal-likelihood gradient needs `∂k/∂ log ℓ_j`, which for every
//! kernel here factors as
//!
//! `∂k/∂ log ℓ_j = s² · g(r) · d_j² / ℓ_j²`,  `d_j = x_j − x'_j`,
//!
//! with a kernel-specific radial factor `g(r)` that stays finite at
//! `r = 0` — so gradients are well-defined on duplicated points (which
//! fantasy conditioning produces routinely).

use pbo_linalg::Matrix;

/// Kernel family. The paper uses Matérn-5/2 (Table 3); the others exist
/// for ablations and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelType {
    /// Matérn ν=5/2: `(1 + √5 r + 5r²/3) exp(−√5 r)`.
    Matern52,
    /// Matérn ν=3/2: `(1 + √3 r) exp(−√3 r)`.
    Matern32,
    /// Squared exponential: `exp(−r²/2)`.
    Rbf,
}

impl KernelType {
    /// Radial profile `rho(r)` (value at unit outputscale).
    #[inline]
    pub fn rho(self, r: f64) -> f64 {
        match self {
            KernelType::Matern52 => {
                let sr = 5.0f64.sqrt() * r;
                (1.0 + sr + sr * sr / 3.0) * (-sr).exp()
            }
            KernelType::Matern32 => {
                let sr = 3.0f64.sqrt() * r;
                (1.0 + sr) * (-sr).exp()
            }
            KernelType::Rbf => (-0.5 * r * r).exp(),
        }
    }

    /// Radial gradient factor `g(r)` with
    /// `∂rho/∂ log ℓ_j = g(r) · d_j²/ℓ_j²` (finite at r = 0).
    #[inline]
    pub fn grad_factor(self, r: f64) -> f64 {
        match self {
            KernelType::Matern52 => {
                let sr = 5.0f64.sqrt() * r;
                (5.0 / 3.0) * (1.0 + sr) * (-sr).exp()
            }
            KernelType::Matern32 => 3.0 * (-(3.0f64.sqrt() * r)).exp(),
            KernelType::Rbf => (-0.5 * r * r).exp(),
        }
    }

    /// `(rho(r), g(r))` in one call, sharing the transcendental
    /// evaluation. Bitwise-identical to calling [`rho`](Self::rho) and
    /// [`grad_factor`](Self::grad_factor) separately (the shared `exp`
    /// receives the same argument and the surrounding products keep the
    /// same association), which the workspace gradient path relies on to
    /// match the naive reference exactly.
    #[inline]
    pub fn rho_and_grad(self, r: f64) -> (f64, f64) {
        match self {
            KernelType::Matern52 => {
                let sr = 5.0f64.sqrt() * r;
                let e = (-sr).exp();
                ((1.0 + sr + sr * sr / 3.0) * e, (5.0 / 3.0) * (1.0 + sr) * e)
            }
            KernelType::Matern32 => {
                let sr = 3.0f64.sqrt() * r;
                let e = (-sr).exp();
                ((1.0 + sr) * e, 3.0 * e)
            }
            KernelType::Rbf => {
                let e = (-0.5 * r * r).exp();
                (e, e)
            }
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            KernelType::Matern52 => "matern52",
            KernelType::Matern32 => "matern32",
            KernelType::Rbf => "rbf",
        }
    }
}

/// A stationary ARD kernel: family + outputscale + per-dimension
/// lengthscales.
#[derive(Debug, Clone)]
pub struct Kernel {
    /// Kernel family.
    pub family: KernelType,
    /// Signal variance `s²`.
    pub outputscale: f64,
    /// ARD lengthscales `ℓ_j > 0`.
    pub lengthscales: Vec<f64>,
}

impl Kernel {
    /// New kernel with the given family and dimension, unit outputscale
    /// and moderate lengthscales (0.5 — half the unit cube).
    pub fn new(family: KernelType, dim: usize) -> Self {
        Kernel { family, outputscale: 1.0, lengthscales: vec![0.5; dim] }
    }

    /// Input dimension.
    pub fn dim(&self) -> usize {
        self.lengthscales.len()
    }

    /// Scaled distance `r` between two points.
    #[inline]
    pub fn scaled_dist(&self, a: &[f64], b: &[f64]) -> f64 {
        let mut s = 0.0;
        for j in 0..a.len() {
            let d = (a[j] - b[j]) / self.lengthscales[j];
            s += d * d;
        }
        s.sqrt()
    }

    /// Covariance between two points.
    #[inline]
    pub fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        self.outputscale * self.family.rho(self.scaled_dist(a, b))
    }

    /// Prior variance at any point (`k(x, x)`).
    #[inline]
    pub fn prior_var(&self) -> f64 {
        self.outputscale
    }

    /// Dense kernel matrix over the rows of `x` (symmetric), assembled in
    /// parallel over row blocks when large. Each row is computed in full
    /// (`eval` is symmetric bit-for-bit, so no mirroring pass is needed
    /// and rows stay independent for the scoped-thread fan-out).
    pub fn matrix(&self, x: &Matrix) -> Matrix {
        let n = x.rows();
        let mut k = Matrix::zeros(n, n);
        // Transcendental-heavy inner kernel: weight the "flop-ish" work
        // estimate well above d multiply-adds per entry.
        let work = n * n * (8 * self.dim() + 16);
        pbo_linalg::parallel::for_each_row_chunk(k.as_mut_slice(), n, work, |i, row| {
            let xi = x.row(i);
            for (j, out) in row.iter_mut().enumerate() {
                *out = if i == j { self.outputscale } else { self.eval(xi, x.row(j)) };
            }
        });
        k
    }

    /// Cross-covariance matrix between rows of `a` (n) and rows of `b`
    /// (m): `n x m`, assembled in parallel over row blocks when large.
    pub fn cross_matrix(&self, a: &Matrix, b: &Matrix) -> Matrix {
        let mut k = Matrix::zeros(a.rows(), b.rows());
        let work = a.rows() * b.rows() * (8 * self.dim() + 16);
        pbo_linalg::parallel::for_each_row_chunk(k.as_mut_slice(), b.rows(), work, |i, row| {
            let ra = a.row(i);
            for (j, out) in row.iter_mut().enumerate() {
                *out = self.eval(ra, b.row(j));
            }
        });
        k
    }

    /// Covariance vector between one point and the rows of `x`.
    pub fn cross_vec(&self, x: &Matrix, p: &[f64]) -> Vec<f64> {
        (0..x.rows()).map(|i| self.eval(x.row(i), p)).collect()
    }

    /// [`cross_vec`](Self::cross_vec) into a caller-owned buffer
    /// (bit-identical entries, zero allocations).
    pub fn cross_vec_into(&self, x: &Matrix, p: &[f64], out: &mut [f64]) {
        debug_assert_eq!(out.len(), x.rows());
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.eval(x.row(i), p);
        }
    }

    /// Fused cross-covariance + query-gradient factors against the rows
    /// of `x`: `k_out[i] = k(x_i, p)` and `gf_out[i] = s²·g(r_i)`, the
    /// scalar that [`grad_wrt_query_from_factor`](Self::grad_wrt_query_from_factor)
    /// turns into `∂k/∂p`. One distance + one shared transcendental per
    /// row instead of two of each; entries are bit-identical to
    /// [`cross_vec`](Self::cross_vec) and the factor inside
    /// [`grad_wrt_query`](Self::grad_wrt_query) (see
    /// [`KernelType::rho_and_grad`]).
    pub fn cross_vec_grad_into(&self, x: &Matrix, p: &[f64], k_out: &mut [f64], gf_out: &mut [f64]) {
        debug_assert_eq!(k_out.len(), x.rows());
        debug_assert_eq!(gf_out.len(), x.rows());
        for i in 0..x.rows() {
            let r = self.scaled_dist(x.row(i), p);
            let (rho, g) = self.family.rho_and_grad(r);
            k_out[i] = self.outputscale * rho;
            gf_out[i] = self.outputscale * g;
        }
    }

    /// Fill `out` with the squared lengthscales `ℓ_j²` (reusing its
    /// capacity; no allocation once it has warmed up to the dimension).
    /// Hot gradient loops hoist these out of their per-point inner loop;
    /// dividing by the precomputed product is bit-identical to dividing
    /// by `ℓ_j * ℓ_j` formed in place, so fused accumulations built on
    /// it (see `pbo_acq::posterior_with_grad_ws`) reproduce
    /// [`grad_wrt_query`](Self::grad_wrt_query) exactly.
    pub fn sq_lengthscales_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.lengthscales.iter().map(|l| l * l));
    }

    /// [`cross_vec_grad_into`](Self::cross_vec_grad_into) with the
    /// reciprocal lengthscales precomputed by the caller (`inv_ls[j] =
    /// 1/ℓ_j`, see [`inv_lengthscales_into`](Self::inv_lengthscales_into)):
    /// the per-element division inside the scaled distance becomes a
    /// multiplication, removing `n·d` divides per posterior call.
    /// Entries agree with the division form to a rounding ulp per
    /// coordinate — a reassociation, not a bit-identical rewrite, so the
    /// posterior hot path only selects this variant above the
    /// large-system threshold (`pbo_linalg::cholesky::BIT_EXACT_MAX_N`)
    /// where the bit-exactness guarantee is already off.
    pub fn cross_vec_grad_into_scaled(
        &self,
        x: &Matrix,
        p: &[f64],
        inv_ls: &[f64],
        k_out: &mut [f64],
        gf_out: &mut [f64],
    ) {
        debug_assert_eq!(k_out.len(), x.rows());
        debug_assert_eq!(gf_out.len(), x.rows());
        debug_assert_eq!(inv_ls.len(), p.len());
        for i in 0..x.rows() {
            let r = pbo_linalg::vec_ops::weighted_dist2(x.row(i), p, inv_ls).sqrt();
            let (rho, g) = self.family.rho_and_grad(r);
            k_out[i] = self.outputscale * rho;
            gf_out[i] = self.outputscale * g;
        }
    }

    /// Fill `out` with the reciprocal lengthscales `1/ℓ_j` (reusing its
    /// capacity), the weights
    /// [`cross_vec_grad_into_scaled`](Self::cross_vec_grad_into_scaled)
    /// wants.
    pub fn inv_lengthscales_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.lengthscales.iter().map(|l| 1.0 / l));
    }

    /// Fill `out` with the reciprocal squared lengthscales `1/ℓ_j²`
    /// (reusing its capacity), for division-free gradient accumulations
    /// on the large-system path.
    pub fn inv_sq_lengthscales_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.lengthscales.iter().map(|l| 1.0 / (l * l)));
    }

    /// Gradient of `k(p, b)` with respect to the query point `p`:
    /// `∂k/∂p_j = −s² g(r) (p_j − b_j)/ℓ_j²`, finite at `p = b` for every
    /// family (the radial factor `g` absorbs the `1/r` singularity).
    pub fn grad_wrt_query(&self, p: &[f64], b: &[f64], out: &mut [f64]) {
        let r = self.scaled_dist(p, b);
        let gf = self.outputscale * self.family.grad_factor(r);
        self.grad_wrt_query_from_factor(gf, p, b, out);
    }

    /// [`grad_wrt_query`](Self::grad_wrt_query) with the radial factor
    /// `gf = s²·g(r)` already in hand (e.g. from
    /// [`cross_vec_grad_into`](Self::cross_vec_grad_into)).
    #[inline]
    pub fn grad_wrt_query_from_factor(&self, gf: f64, p: &[f64], b: &[f64], out: &mut [f64]) {
        debug_assert_eq!(out.len(), p.len());
        for j in 0..p.len() {
            let l2 = self.lengthscales[j] * self.lengthscales[j];
            out[j] = -gf * (p[j] - b[j]) / l2;
        }
    }

    /// [`cross_matrix`](Self::cross_matrix) into a caller-owned matrix
    /// which is reshaped in place (reusing its allocation when capacity
    /// allows). Entries are bit-identical.
    pub fn cross_matrix_into(&self, a: &Matrix, b: &Matrix, out: &mut Matrix) {
        out.reset_zeros(a.rows(), b.rows());
        let work = a.rows() * b.rows() * (8 * self.dim() + 16);
        pbo_linalg::parallel::for_each_row_chunk(out.as_mut_slice(), b.rows(), work, |i, row| {
            let ra = a.row(i);
            for (j, o) in row.iter_mut().enumerate() {
                *o = self.eval(ra, b.row(j));
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rho_at_zero_is_one() {
        for f in [KernelType::Matern52, KernelType::Matern32, KernelType::Rbf] {
            assert!((f.rho(0.0) - 1.0).abs() < 1e-15, "{}", f.name());
        }
    }

    #[test]
    fn rho_decreases_monotonically() {
        for f in [KernelType::Matern52, KernelType::Matern32, KernelType::Rbf] {
            let mut prev = f.rho(0.0);
            for i in 1..50 {
                let v = f.rho(i as f64 * 0.2);
                assert!(v < prev, "{} not decreasing", f.name());
                assert!(v > 0.0);
                prev = v;
            }
        }
    }

    #[test]
    fn fused_rho_and_grad_is_bitwise_identical() {
        for f in [KernelType::Matern52, KernelType::Matern32, KernelType::Rbf] {
            for i in 0..200 {
                let r = i as f64 * 0.05;
                let (rho, gf) = f.rho_and_grad(r);
                assert_eq!(rho, f.rho(r), "{} rho at r={r}", f.name());
                assert_eq!(gf, f.grad_factor(r), "{} gf at r={r}", f.name());
            }
        }
    }

    #[test]
    fn grad_factor_matches_finite_difference() {
        // Check ∂rho/∂log ℓ = g(r) d²/ℓ² numerically in 1-D.
        for f in [KernelType::Matern52, KernelType::Matern32, KernelType::Rbf] {
            for &d in &[0.0, 0.1, 0.7, 2.0] {
                let ell = 0.6f64;
                let h = 1e-6f64;
                let r = |l: f64| f.rho(d / l);
                let fd = (r(ell * h.exp()) - r(ell * (-h).exp())) / (2.0 * h);
                // fd approximates d rho / d log ell
                let analytic = f.grad_factor(d / ell) * d * d / (ell * ell);
                assert!(
                    (fd - analytic).abs() < 1e-5 * (1.0 + analytic.abs()),
                    "{} d={d}: fd={fd} analytic={analytic}",
                    f.name()
                );
            }
        }
    }

    #[test]
    fn kernel_matrix_symmetric_psd_diag() {
        let k = Kernel {
            family: KernelType::Matern52,
            outputscale: 2.5,
            lengthscales: vec![0.3, 0.8],
        };
        let x = Matrix::from_rows(&[
            vec![0.1, 0.2],
            vec![0.5, 0.9],
            vec![0.4, 0.4],
        ])
        .unwrap();
        let m = k.matrix(&x);
        for i in 0..3 {
            assert!((m[(i, i)] - 2.5).abs() < 1e-15);
            for j in 0..3 {
                assert_eq!(m[(i, j)], m[(j, i)]);
                assert!(m[(i, j)] <= 2.5 + 1e-12);
                assert!(m[(i, j)] > 0.0);
            }
        }
        // PSD: Cholesky with tiny jitter must succeed.
        let mut mj = m.clone();
        mj.add_diag(1e-9);
        assert!(pbo_linalg::Cholesky::factor(&mj).is_ok());
    }

    #[test]
    fn ard_lengthscales_modulate_relevance() {
        // A huge lengthscale in dim 1 makes that dim irrelevant.
        let k = Kernel {
            family: KernelType::Matern52,
            outputscale: 1.0,
            lengthscales: vec![0.2, 1e6],
        };
        let a = [0.0, 0.0];
        let b = [0.0, 100.0];
        assert!((k.eval(&a, &b) - 1.0).abs() < 1e-3);
        let c = [0.4, 0.0];
        assert!(k.eval(&a, &c) < 0.5);
    }

    #[test]
    fn sq_lengthscales_reproduce_inline_products() {
        let mut k = Kernel::new(KernelType::Matern52, 3);
        k.lengthscales = vec![0.23, 0.61, 1.4];
        let mut l2 = Vec::new();
        k.sq_lengthscales_into(&mut l2);
        for (j, &v) in l2.iter().enumerate() {
            let inline = k.lengthscales[j] * k.lengthscales[j];
            assert!(v.to_bits() == inline.to_bits(), "l2[{j}]");
        }
    }

    #[test]
    fn cross_matrix_consistent_with_eval() {
        let k = Kernel::new(KernelType::Rbf, 2);
        let a = Matrix::from_rows(&[vec![0.0, 0.0], vec![1.0, 1.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![0.5, 0.5]]).unwrap();
        let c = k.cross_matrix(&a, &b);
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 1);
        assert!((c[(0, 0)] - k.eval(&[0.0, 0.0], &[0.5, 0.5])).abs() < 1e-15);
    }
}
