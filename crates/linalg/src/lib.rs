#![allow(clippy::needless_range_loop)]

//! # pbo-linalg — dense linear algebra substrate
//!
//! A small, self-contained dense linear-algebra library providing exactly
//! what exact Gaussian-process regression needs:
//!
//! - [`Matrix`]: row-major dense matrix with cache-friendly kernels,
//! - [`vec_ops`]: BLAS-1 style slice operations,
//! - [`Cholesky`]: jitter-stabilised factorization with solves, log-det,
//!   inverse, and **rank-q extension** (append rows/columns to a factored
//!   matrix in `O(n^2 q)`), which backs fantasy conditioning in the
//!   Kriging-Believer acquisition loops,
//! - [`parallel`]: crossbeam scoped-thread helpers used by the larger
//!   kernels.
//!
//! The library is written from scratch (no external BLAS) so the whole
//! reproduction is dependency-light and auditable. Kernels follow the
//! dot-product (`ijk`) forms that keep the inner loops contiguous in
//! row-major storage.

pub mod cholesky;
pub mod matrix;
pub mod parallel;
pub mod vec_ops;

pub use cholesky::Cholesky;
pub use matrix::Matrix;

/// Errors produced by factorizations and solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// The matrix is not positive definite even after the maximum jitter
    /// escalation. Carries the last diagonal pivot that failed.
    NotPositiveDefinite { pivot: f64 },
    /// Operand shapes are incompatible; carries a human-readable detail.
    ShapeMismatch(String),
    /// A numerical quantity became non-finite.
    NonFinite(&'static str),
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix not positive definite (failing pivot {pivot:e})")
            }
            LinalgError::ShapeMismatch(s) => write!(f, "shape mismatch: {s}"),
            LinalgError::NonFinite(what) => write!(f, "non-finite value in {what}"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, LinalgError>;
