#!/bin/bash
# Tier-1 verification gate: release build + full test suite, with
# warnings promoted to errors. Run from anywhere inside the repo.
#
#   scripts/ci.sh            # build + test
#   scripts/ci.sh --quick    # skip the release build (debug tests only)
#
# This is the same gate run_experiments.sh assumes has passed before a
# reproduction sweep is launched.
set -euo pipefail
cd "$(dirname "$0")/.."

export RUSTFLAGS="${RUSTFLAGS:--D warnings}"

if [[ "${1:-}" != "--quick" ]]; then
  echo "== cargo build --release (warnings are errors) =="
  cargo build --release
fi

echo "== cargo test -q (workspace, warnings are errors) =="
cargo test -q

echo "CI gate passed."
