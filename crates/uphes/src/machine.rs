//! The variable-speed pump-turbine: head effects, efficiency surfaces
//! and cavitation zones.
//!
//! Head effects enter three ways (paper §2.1):
//!
//! 1. the **safe operating range** in each mode scales with the head
//!    ratio `ρ = h / h_nominal` (a turbine produces less at low head, a
//!    pump needs more power per m³ at high head);
//! 2. the **efficiency** is a non-convex surface over (power, head):
//!    a quadratic hill around a head-dependent best-efficiency point
//!    with a sinusoidal ripple, the standard shape of measured hill
//!    charts;
//! 3. **cavitation zones**: a head-dependent power band inside the
//!    turbine range, and the top of the pump range at low head, are
//!    forbidden (the machine may not be dispatched there at all) —
//!    these are what make the simulated profit *discontinuous*.

use crate::{G, RHO};

/// Operating mode implied by a signed power setpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Generating (positive power, water moves down).
    Turbine,
    /// Pumping (negative power, water moves up).
    Pump,
    /// No water movement.
    Idle,
}

/// Why a setpoint cannot be served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Infeasibility {
    /// Power below the mode's minimum or above its maximum at this head.
    OutsideRange,
    /// Inside a cavitation band.
    Cavitation,
    /// Net head outside the machine's safe window.
    UnsafeHead,
}

/// Result of a dispatch feasibility check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Dispatch {
    /// Setpoint can be served; carries the hydraulic flow in m³/s
    /// (positive = downward through the turbine, negative = upward).
    Ok { mode: Mode, flow: f64, efficiency: f64 },
    /// Setpoint rejected.
    Rejected(Infeasibility),
}

/// Pump-turbine unit parameters (Maizeret-like defaults via
/// [`Machine::default`]).
#[derive(Debug, Clone)]
pub struct Machine {
    /// Nominal net head \[m\].
    pub h_nominal: f64,
    /// Safe head window \[m\]; outside it the unit must idle.
    pub h_safe: (f64, f64),
    /// Turbine power range at nominal head \[MW\].
    pub turbine_range: (f64, f64),
    /// Pump power range at nominal head \[MW\] (electrical draw).
    pub pump_range: (f64, f64),
    /// Peak efficiency of either mode.
    pub eta_peak: f64,
}

impl Default for Machine {
    fn default() -> Self {
        Machine {
            h_nominal: 75.0,
            h_safe: (52.0, 98.0),
            turbine_range: (4.0, 8.0),
            pump_range: (6.0, 8.0),
            eta_peak: 0.91,
        }
    }
}

impl Machine {
    /// Head ratio clamped to the physically sensible band.
    #[inline]
    fn rho(&self, head: f64) -> f64 {
        (head / self.h_nominal).clamp(0.3, 1.8)
    }

    /// Turbine power limits \[MW\] at a given head.
    pub fn turbine_limits(&self, head: f64) -> (f64, f64) {
        let k = self.rho(head).powf(0.5).clamp(0.7, 1.15);
        (self.turbine_range.0 * k, self.turbine_range.1 * k)
    }

    /// Pump power limits \[MW\] (positive magnitudes) at a given head.
    pub fn pump_limits(&self, head: f64) -> (f64, f64) {
        let k = self.rho(head).powf(0.75).clamp(0.7, 1.2);
        (self.pump_range.0 * k, self.pump_range.1 * k)
    }

    /// Head-dependent forbidden band inside the turbine range
    /// (cavitation / rough-zone), `(lo, hi)` in MW.
    pub fn turbine_cavitation(&self, head: f64) -> (f64, f64) {
        let (lo, hi) = self.turbine_limits(head);
        let s = (6.0 * (self.rho(head) - 1.0)).sin();
        let center = lo + (hi - lo) * (0.45 + 0.25 * s);
        let half_width = 0.5;
        (center - half_width, center + half_width)
    }

    /// Pump cavitation: at low head (`ρ < 0.92`) the top of the pump
    /// range is forbidden. Returns the forbidden band `(lo, hi)` in MW
    /// magnitudes, or `None`.
    pub fn pump_cavitation(&self, head: f64) -> Option<(f64, f64)> {
        if self.rho(head) < 0.92 {
            let (_, hi) = self.pump_limits(head);
            Some((hi - 0.5, hi + 1.0))
        } else {
            None
        }
    }

    /// Turbine efficiency surface over (power \[MW\], head \[m\]).
    pub fn turbine_efficiency(&self, p: f64, head: f64) -> f64 {
        let (lo, hi) = self.turbine_limits(head);
        let bep = lo + 0.62 * (hi - lo); // best-efficiency point
        let droop = 0.018 * (p - bep) * (p - bep);
        let ripple = 0.015 * (2.4 * p).sin() * (head / 11.0).cos();
        (self.eta_peak - droop + ripple).clamp(0.55, 0.95)
    }

    /// Pump efficiency surface over (power magnitude \[MW\], head \[m\]).
    pub fn pump_efficiency(&self, p: f64, head: f64) -> f64 {
        let (lo, hi) = self.pump_limits(head);
        let bep = lo + 0.55 * (hi - lo);
        let droop = 0.022 * (p - bep) * (p - bep);
        let ripple = 0.012 * (3.1 * p).cos() * (head / 13.0).sin();
        (self.eta_peak - 0.015 - droop + ripple).clamp(0.55, 0.95)
    }

    /// Downward flow \[m³/s\] produced by generating `p` MW at `head`.
    pub fn turbine_flow(&self, p: f64, head: f64) -> f64 {
        let eta = self.turbine_efficiency(p, head);
        p * 1e6 / (eta * RHO * G * head.max(1.0))
    }

    /// Upward flow \[m³/s\] produced by pumping with `p` MW draw at `head`.
    pub fn pump_flow(&self, p: f64, head: f64) -> f64 {
        let eta = self.pump_efficiency(p, head);
        eta * p * 1e6 / (RHO * G * head.max(1.0))
    }

    /// Full dispatch check of a signed setpoint (MW; > 0 turbine,
    /// < 0 pump, |p| < 0.05 treated as idle).
    pub fn dispatch(&self, p_signed: f64, head: f64) -> Dispatch {
        if p_signed.abs() < 0.05 {
            // Idling is always allowed — the head window only constrains
            // actual water movement through the machine.
            return Dispatch::Ok { mode: Mode::Idle, flow: 0.0, efficiency: 1.0 };
        }
        if head < self.h_safe.0 || head > self.h_safe.1 {
            return Dispatch::Rejected(Infeasibility::UnsafeHead);
        }
        if p_signed > 0.0 {
            let p = p_signed;
            let (lo, hi) = self.turbine_limits(head);
            if p < lo - 1e-9 || p > hi + 1e-9 {
                return Dispatch::Rejected(Infeasibility::OutsideRange);
            }
            let (clo, chi) = self.turbine_cavitation(head);
            if p > clo && p < chi {
                return Dispatch::Rejected(Infeasibility::Cavitation);
            }
            Dispatch::Ok {
                mode: Mode::Turbine,
                flow: self.turbine_flow(p, head),
                efficiency: self.turbine_efficiency(p, head),
            }
        } else {
            let p = -p_signed;
            let (lo, hi) = self.pump_limits(head);
            if p < lo - 1e-9 || p > hi + 1e-9 {
                return Dispatch::Rejected(Infeasibility::OutsideRange);
            }
            if let Some((clo, chi)) = self.pump_cavitation(head) {
                if p > clo && p < chi {
                    return Dispatch::Rejected(Infeasibility::Cavitation);
                }
            }
            Dispatch::Ok {
                mode: Mode::Pump,
                flow: -self.pump_flow(p, head),
                efficiency: self.pump_efficiency(p, head),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_limits_match_paper_ranges() {
        let m = Machine::default();
        let (tlo, thi) = m.turbine_limits(m.h_nominal);
        let (plo, phi) = m.pump_limits(m.h_nominal);
        assert!((tlo - 4.0).abs() < 1e-9 && (thi - 8.0).abs() < 1e-9);
        assert!((plo - 6.0).abs() < 1e-9 && (phi - 8.0).abs() < 1e-9);
    }

    #[test]
    fn low_head_shrinks_turbine_range() {
        let m = Machine::default();
        let (lo_n, hi_n) = m.turbine_limits(75.0);
        let (lo_l, hi_l) = m.turbine_limits(58.0);
        assert!(hi_l < hi_n);
        assert!(lo_l < lo_n);
        assert!(hi_l - lo_l < hi_n - lo_n);
    }

    #[test]
    fn efficiency_bounded_and_nonconvex() {
        let m = Machine::default();
        let mut etas = Vec::new();
        for i in 0..=40 {
            let p = 4.0 + 4.0 * i as f64 / 40.0;
            let e = m.turbine_efficiency(p, 75.0);
            assert!((0.55..=0.95).contains(&e));
            etas.push(e);
        }
        // The ripple must create at least one interior local extremum.
        let mut sign_changes = 0;
        for w in etas.windows(3) {
            if (w[1] - w[0]) * (w[2] - w[1]) < 0.0 {
                sign_changes += 1;
            }
        }
        assert!(sign_changes >= 1, "efficiency curve unexpectedly monotone/convex");
    }

    #[test]
    fn cavitation_band_inside_turbine_range_and_moves_with_head() {
        let m = Machine::default();
        for &h in &[60.0, 75.0, 90.0] {
            let (lo, hi) = m.turbine_limits(h);
            let (clo, chi) = m.turbine_cavitation(h);
            assert!(clo > lo - 0.5 && chi < hi + 0.5, "band outside range at {h}");
            assert!(chi > clo);
        }
        let a = m.turbine_cavitation(60.0);
        let b = m.turbine_cavitation(90.0);
        assert!((a.0 - b.0).abs() > 0.1, "band should move with head");
    }

    #[test]
    fn dispatch_rules() {
        let m = Machine::default();
        // Idle.
        assert!(matches!(m.dispatch(0.0, 75.0), Dispatch::Ok { mode: Mode::Idle, .. }));
        // Valid turbine point away from the cavitation band.
        let (clo, chi) = m.turbine_cavitation(75.0);
        let p_ok = if clo - 4.0 > 0.3 { 0.5 * (4.0 + clo) } else { 0.5 * (chi + 8.0) };
        match m.dispatch(p_ok, 75.0) {
            Dispatch::Ok { mode: Mode::Turbine, flow, efficiency } => {
                assert!(flow > 0.0 && efficiency > 0.5);
            }
            other => panic!("expected turbine ok, got {other:?}"),
        }
        // Inside cavitation band → rejected.
        let p_cav = 0.5 * (clo + chi);
        assert_eq!(
            m.dispatch(p_cav, 75.0),
            Dispatch::Rejected(Infeasibility::Cavitation)
        );
        // Power between idle and turbine minimum → rejected.
        assert_eq!(
            m.dispatch(2.0, 75.0),
            Dispatch::Rejected(Infeasibility::OutsideRange)
        );
        // Unsafe head.
        assert_eq!(
            m.dispatch(6.0, 40.0),
            Dispatch::Rejected(Infeasibility::UnsafeHead)
        );
        // Pump draws water upward (negative flow).
        match m.dispatch(-7.0, 75.0) {
            Dispatch::Ok { mode: Mode::Pump, flow, .. } => assert!(flow < 0.0),
            other => panic!("expected pump ok, got {other:?}"),
        }
    }

    #[test]
    fn flows_have_sane_magnitudes() {
        let m = Machine::default();
        // 8 MW at 75 m head, η≈0.9 → q ≈ 12 m³/s.
        let q = m.turbine_flow(8.0, 75.0);
        assert!((8.0..16.0).contains(&q), "turbine flow {q}");
        let qp = m.pump_flow(8.0, 75.0);
        assert!((6.0..14.0).contains(&qp), "pump flow {qp}");
        // Pumping is less effective than turbining at equal power
        // (round-trip efficiency < 1).
        assert!(qp < q);
    }

    #[test]
    fn round_trip_efficiency_below_unity() {
        let m = Machine::default();
        let eta_rt = m.turbine_efficiency(7.0, 75.0) * m.pump_efficiency(7.0, 75.0);
        assert!(eta_rt < 0.9);
        assert!(eta_rt > 0.5);
    }
}
