#![allow(clippy::needless_range_loop)]

//! # pbo-opt — box-constrained inner optimizers
//!
//! The "inner optimization" layer of Bayesian optimization: maximizing
//! acquisition functions and the GP marginal likelihood. Both are smooth
//! box-constrained problems, solved in the paper with multi-start
//! L-BFGS-B (BoTorch's `optimize_acqf`); we provide:
//!
//! - [`lbfgs`]: projected-gradient L-BFGS with box bounds and an Armijo
//!   backtracking line search along the projected path,
//! - [`neldermead`]: a derivative-free simplex fallback for non-smooth
//!   objectives (used by tests and by ablations),
//! - [`multistart`]: the restart driver seeding locals from Sobol points
//!   plus caller-supplied warm starts.
//!
//! Convention: **everything minimizes**. Callers maximizing an
//! acquisition wrap it in a negation.

pub mod lbfgs;
pub mod multistart;
pub mod neldermead;

/// A box-constrained domain `[lo_i, hi_i]^d`.
#[derive(Debug, Clone, PartialEq)]
pub struct Bounds {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl Bounds {
    /// Construct from per-dimension bounds. Panics if `lo_i > hi_i` or
    /// lengths differ.
    pub fn new(lo: Vec<f64>, hi: Vec<f64>) -> Self {
        assert_eq!(lo.len(), hi.len(), "bounds length mismatch");
        for (l, h) in lo.iter().zip(&hi) {
            assert!(l <= h, "inverted bound: [{l}, {h}]");
        }
        Bounds { lo, hi }
    }

    /// The same interval in every dimension.
    pub fn cube(dim: usize, lo: f64, hi: f64) -> Self {
        Bounds::new(vec![lo; dim], vec![hi; dim])
    }

    /// The unit cube.
    pub fn unit(dim: usize) -> Self {
        Bounds::cube(dim, 0.0, 1.0)
    }

    /// Dimension.
    pub fn dim(&self) -> usize {
        self.lo.len()
    }

    /// Lower bounds.
    pub fn lo(&self) -> &[f64] {
        &self.lo
    }

    /// Upper bounds.
    pub fn hi(&self) -> &[f64] {
        &self.hi
    }

    /// Project a point into the box in place.
    pub fn clamp(&self, x: &mut [f64]) {
        for i in 0..x.len() {
            x[i] = x[i].clamp(self.lo[i], self.hi[i]);
        }
    }

    /// True if `x` lies inside (inclusive).
    pub fn contains(&self, x: &[f64]) -> bool {
        x.len() == self.dim()
            && x.iter()
                .zip(self.lo.iter().zip(&self.hi))
                .all(|(v, (l, h))| *v >= *l && *v <= *h)
    }

    /// Side lengths.
    pub fn widths(&self) -> Vec<f64> {
        self.lo.iter().zip(&self.hi).map(|(l, h)| h - l).collect()
    }

    /// Center point.
    pub fn center(&self) -> Vec<f64> {
        self.lo.iter().zip(&self.hi).map(|(l, h)| 0.5 * (l + h)).collect()
    }

    /// Intersect with another box (used by trust regions and BSP cells).
    /// Collapsed dimensions produce degenerate `[v, v]` intervals rather
    /// than inverted ones.
    pub fn intersect(&self, other: &Bounds) -> Bounds {
        assert_eq!(self.dim(), other.dim());
        let lo: Vec<f64> =
            self.lo.iter().zip(&other.lo).map(|(a, b)| a.max(*b)).collect();
        let hi: Vec<f64> = self
            .hi
            .iter()
            .zip(&other.hi)
            .zip(&lo)
            .map(|((a, b), l)| a.min(*b).max(*l))
            .collect();
        Bounds::new(lo, hi)
    }

    /// Map a unit-cube point into this box.
    pub fn from_unit(&self, u: &[f64]) -> Vec<f64> {
        let mut x = u.to_vec();
        pbo_sampling::scale_to_box(&mut x, &self.lo, &self.hi);
        x
    }
}

/// Objective value with gradient.
pub trait GradObjective {
    /// Dimension of the search space.
    fn dim(&self) -> usize;
    /// Objective value at `x`.
    fn value(&self, x: &[f64]) -> f64;
    /// Value and gradient at `x`.
    fn value_grad(&self, x: &[f64]) -> (f64, Vec<f64>);
}

/// A [`GradObjective`] that can also score a whole block of candidates
/// in one call and be shared across scoped threads.
///
/// The multistart driver uses `value_batch` for its raw-Sobol scoring
/// phase — acquisition objectives implement it with one batched GP
/// prediction (`predict_many`) instead of `raw_samples` single-point
/// posterior solves — and relies on `Sync` to fan raw scoring and
/// per-start polishing out over `pbo_linalg::parallel` scoped threads.
///
/// The default implementation scores point by point, so any `Sync`
/// gradient objective is a valid (if unbatched) `BatchObjective`.
pub trait BatchObjective: GradObjective + Sync {
    /// Score `xs` (row-major, `xs.len() / dim()` points) into `out`,
    /// one value per point. Must agree with [`GradObjective::value`] up
    /// to batched-summation rounding (a few ulps).
    fn value_batch(&self, xs: &[f64], out: &mut [f64]) {
        let d = self.dim().max(1);
        debug_assert_eq!(xs.len() % d, 0);
        debug_assert_eq!(out.len(), xs.len() / d);
        for (x, o) in xs.chunks_exact(d).zip(out.iter_mut()) {
            *o = self.value(x);
        }
    }
}

impl<V, G> BatchObjective for FnGradObjective<V, G>
where
    V: Fn(&[f64]) -> f64 + Sync,
    G: Fn(&[f64]) -> (f64, Vec<f64>) + Sync,
{
}

/// Wrap a pair of closures as a [`GradObjective`].
pub struct FnGradObjective<V, G> {
    dim: usize,
    value: V,
    value_grad: G,
}

impl<V, G> FnGradObjective<V, G>
where
    V: Fn(&[f64]) -> f64,
    G: Fn(&[f64]) -> (f64, Vec<f64>),
{
    /// Build from `dim`, a value closure and a value+gradient closure.
    pub fn new(dim: usize, value: V, value_grad: G) -> Self {
        FnGradObjective { dim, value, value_grad }
    }
}

impl<V, G> GradObjective for FnGradObjective<V, G>
where
    V: Fn(&[f64]) -> f64,
    G: Fn(&[f64]) -> (f64, Vec<f64>),
{
    fn dim(&self) -> usize {
        self.dim
    }
    fn value(&self, x: &[f64]) -> f64 {
        (self.value)(x)
    }
    fn value_grad(&self, x: &[f64]) -> (f64, Vec<f64>) {
        (self.value_grad)(x)
    }
}

/// Memoizing adapter caching the most recent evaluation of an inner
/// [`GradObjective`].
///
/// L-BFGS line searches evaluate value+gradient at a trial point and
/// then re-request the accepted point when the next iteration starts;
/// multistart drivers score a start with `value` and immediately ask the
/// local optimizer for `value_grad` at the same point. For expensive
/// objectives (the GP marginal likelihood factors an `n x n` matrix per
/// call) each repeat is a full re-solve. This wrapper remembers the last
/// point only — the access pattern above never needs more — and serves
/// repeats by clone.
///
/// `value` hits never trigger gradient work, and a gradient request at a
/// point where only the value is cached falls through to the inner
/// objective (objectives like the workspace-backed MLL have a cheaper
/// value-only path, so caching must not force the gradient eagerly).
pub struct MemoGradObjective<O> {
    inner: O,
    last: std::cell::RefCell<Option<Memo>>,
}

struct Memo {
    x: Vec<f64>,
    value: f64,
    grad: Option<Vec<f64>>,
}

impl<O: GradObjective> MemoGradObjective<O> {
    /// Wrap an objective with a one-point evaluation cache.
    pub fn new(inner: O) -> Self {
        MemoGradObjective { inner, last: std::cell::RefCell::new(None) }
    }

    /// The wrapped objective.
    pub fn inner(&self) -> &O {
        &self.inner
    }
}

impl<O: GradObjective> GradObjective for MemoGradObjective<O> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn value(&self, x: &[f64]) -> f64 {
        if let Some(m) = self.last.borrow().as_ref() {
            if m.x == x {
                return m.value;
            }
        }
        let value = self.inner.value(x);
        *self.last.borrow_mut() = Some(Memo { x: x.to_vec(), value, grad: None });
        value
    }

    fn value_grad(&self, x: &[f64]) -> (f64, Vec<f64>) {
        if let Some(m) = self.last.borrow().as_ref() {
            if m.x == x {
                if let Some(g) = &m.grad {
                    return (m.value, g.clone());
                }
            }
        }
        let (value, grad) = self.inner.value_grad(x);
        *self.last.borrow_mut() =
            Some(Memo { x: x.to_vec(), value, grad: Some(grad.clone()) });
        (value, grad)
    }
}

/// Central finite-difference gradient; the test harness uses it to
/// validate analytic gradients (GP marginal likelihood, acquisition
/// functions).
pub fn fd_gradient(f: impl Fn(&[f64]) -> f64, x: &[f64], h: f64) -> Vec<f64> {
    let mut g = vec![0.0; x.len()];
    let mut xp = x.to_vec();
    for i in 0..x.len() {
        let orig = xp[i];
        xp[i] = orig + h;
        let fp = f(&xp);
        xp[i] = orig - h;
        let fm = f(&xp);
        xp[i] = orig;
        g[i] = (fp - fm) / (2.0 * h);
    }
    g
}

/// Result of a local or multistart optimization.
#[derive(Debug, Clone)]
pub struct OptResult {
    /// Best point found.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub value: f64,
    /// Objective/gradient evaluations spent.
    pub evals: usize,
    /// Iterations of the outer loop.
    pub iters: usize,
    /// True if a convergence test triggered (vs budget exhaustion).
    pub converged: bool,
    /// Restart starvation reported by the multistart drivers: how many of
    /// the requested raw-sample restarts could not be filled with
    /// finite-scoring candidates even after Sobol backfill (0 for local
    /// optimizers and for healthy multistarts).
    pub restart_shortfall: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_basics() {
        let b = Bounds::cube(3, -1.0, 2.0);
        assert_eq!(b.dim(), 3);
        assert!(b.contains(&[0.0, -1.0, 2.0]));
        assert!(!b.contains(&[0.0, -1.1, 0.0]));
        assert_eq!(b.center(), vec![0.5; 3]);
        assert_eq!(b.widths(), vec![3.0; 3]);
    }

    #[test]
    fn bounds_clamp() {
        let b = Bounds::cube(2, 0.0, 1.0);
        let mut x = [-5.0, 0.7];
        b.clamp(&mut x);
        assert_eq!(x, [0.0, 0.7]);
    }

    #[test]
    fn intersect_handles_disjoint() {
        let a = Bounds::cube(1, 0.0, 1.0);
        let b = Bounds::cube(1, 2.0, 3.0);
        let c = a.intersect(&b);
        // Degenerate but not inverted.
        assert!(c.lo()[0] <= c.hi()[0]);
    }

    #[test]
    #[should_panic(expected = "inverted bound")]
    fn inverted_bounds_panic() {
        let _ = Bounds::new(vec![1.0], vec![0.0]);
    }

    #[test]
    fn fd_gradient_of_quadratic() {
        let g = fd_gradient(|x| x[0] * x[0] + 3.0 * x[1], &[2.0, 5.0], 1e-6);
        assert!((g[0] - 4.0).abs() < 1e-6);
        assert!((g[1] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn memo_serves_repeats_without_inner_calls() {
        use std::cell::Cell;
        struct Counting {
            values: Cell<usize>,
            grads: Cell<usize>,
        }
        impl GradObjective for Counting {
            fn dim(&self) -> usize {
                2
            }
            fn value(&self, x: &[f64]) -> f64 {
                self.values.set(self.values.get() + 1);
                x[0] * x[0] + x[1]
            }
            fn value_grad(&self, x: &[f64]) -> (f64, Vec<f64>) {
                self.grads.set(self.grads.get() + 1);
                (x[0] * x[0] + x[1], vec![2.0 * x[0], 1.0])
            }
        }
        let obj =
            MemoGradObjective::new(Counting { values: Cell::new(0), grads: Cell::new(0) });
        let p = [1.5, -0.5];
        // value -> value_grad -> value_grad at one point: one of each.
        let v0 = obj.value(&p);
        let (v1, g1) = obj.value_grad(&p);
        let (v2, g2) = obj.value_grad(&p);
        assert_eq!(v0, v1);
        assert_eq!((v1, &g1), (v2, &g2));
        assert_eq!(obj.inner().values.get(), 1);
        assert_eq!(obj.inner().grads.get(), 1);
        // Cached gradient serves value repeats too.
        assert_eq!(obj.value(&p), v0);
        assert_eq!(obj.inner().values.get(), 1);
        // A new point invalidates the cache.
        let q = [0.0, 0.0];
        obj.value(&q);
        obj.value_grad(&q);
        assert_eq!(obj.inner().values.get(), 2);
        assert_eq!(obj.inner().grads.get(), 2);
        // Moving away and back is a genuine recompute (one-point cache).
        obj.value_grad(&p);
        assert_eq!(obj.inner().grads.get(), 3);
    }

    #[test]
    fn from_unit_maps_corners() {
        let b = Bounds::new(vec![-2.0, 0.0], vec![2.0, 10.0]);
        assert_eq!(b.from_unit(&[0.0, 1.0]), vec![-2.0, 10.0]);
    }
}
