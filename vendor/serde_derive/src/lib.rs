//! No-op derive macros backing the offline `serde` stand-in.
//!
//! The derives intentionally expand to nothing: the marker traits in the
//! stand-in `serde` crate carry no methods, so there is nothing to generate.
//! `attributes(serde)` keeps any future `#[serde(...)]` field attributes
//! inert instead of erroring.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
