#![allow(clippy::needless_range_loop)]

//! # pbo-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation from
//! the workspace's own implementations:
//!
//! | Artifact | Command (`cargo run --release -p pbo-bench --bin repro -- …`) |
//! |---|---|
//! | Table 1  | `table1` |
//! | Table 2  | `table2` |
//! | Table 3  | `table3` |
//! | Tables 4–6 | `table4` / `table5` / `table6` |
//! | Table 7  | `table7` |
//! | Fig. 2   | `fig2` |
//! | Figs. 3–7 | `fig3` … `fig7` |
//! | Fig. 8   | `fig8` |
//! | Fig. 9   | `fig9` |
//! | §4 baseline | `baseline` |
//!
//! Numeric results are printed as aligned text tables and also written
//! as CSV under `results/`.
//!
//! Replication grids execute through [`orchestrate`]: a `--jobs N`
//! worker pool with one content-addressed checkpoint per completed run,
//! `--resume` to continue an interrupted campaign, and aggregation as a
//! pure fold over the checkpoint files — artifacts are byte-identical
//! for any worker count and any interruption point.

pub mod cli;
pub mod grid;
pub mod orchestrate;
pub mod profiles;
pub mod report;

pub use grid::{run_cell, ProblemSpec};
pub use orchestrate::{execute_grid, GridPlan, OrchestratorConfig};
pub use profiles::Profile;
