//! Zero-allocation proof for the workspace acquisition hot path.
//!
//! After warm-up, `value_with` and `value_grad_into` for the analytic
//! criteria (EI/PI/UCB) must perform no heap allocations: the posterior
//! intermediates live in the `AcqWorkspace` and the gradient lands in a
//! caller-owned, pre-sized `Vec`. One test per file so no concurrent
//! test thread pollutes the counter.

use pbo_acq::{
    posterior_with_grad_ws, AcqWorkspace, Acquisition, ExpectedImprovement,
    ProbabilityOfImprovement, UpperConfidenceBound,
};
use pbo_gp::kernel::{Kernel, KernelType};
use pbo_gp::GaussianProcess;
use pbo_linalg::Matrix;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

struct CountingAlloc;

// Per-thread counter: the libtest harness allocates concurrently on its
// own threads, so a process-global count would be flaky. Const-init so
// the first access inside `alloc` itself cannot recurse.
thread_local! {
    static ALLOCS: Cell<usize> = const { Cell::new(0) };
}

fn thread_allocs() -> usize {
    ALLOCS.with(|c| c.get())
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn fitted_gp(n: usize, d: usize) -> GaussianProcess {
    let mut x = Matrix::zeros(n, d);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let mut s = 0.0;
        for j in 0..d {
            let v = (((i * d + j) as f64) * 0.61803).fract();
            x[(i, j)] = v;
            s += (v - 0.4) * (v - 0.4);
        }
        y.push(s);
    }
    let mut kernel = Kernel::new(KernelType::Matern52, d);
    kernel.lengthscales = vec![0.4; d];
    GaussianProcess::new(x, &y, kernel, 1e-6).unwrap()
}

#[test]
fn analytic_acquisition_workspace_path_is_allocation_free_after_warmup() {
    let d = 5;
    let gp = fitted_gp(48, d);
    let f_best = gp.best_observed(false);
    let acqs: [&dyn Acquisition; 3] = [
        &ExpectedImprovement { f_best },
        &ProbabilityOfImprovement { f_best },
        &UpperConfidenceBound::default(),
    ];
    let queries: Vec<Vec<f64>> = (0..16)
        .map(|i| (0..d).map(|j| (((i * d + j) as f64) * 0.417).fract()).collect())
        .collect();

    let mut ws = AcqWorkspace::new();
    let mut grad = Vec::with_capacity(d);

    // Warm-up sizes every buffer (workspace and gradient).
    posterior_with_grad_ws(&gp, &queries[0], &mut ws);
    for acq in &acqs {
        let _ = acq.value_with(&gp, &queries[0], &mut ws);
        let _ = acq.value_grad_into(&gp, &queries[0], &mut ws, &mut grad);
    }

    let before = thread_allocs();
    let mut acc = 0.0;
    for q in &queries {
        for acq in &acqs {
            acc += acq.value_with(&gp, q, &mut ws);
            acc += acq.value_grad_into(&gp, q, &mut ws, &mut grad);
            acc += grad.iter().sum::<f64>();
        }
    }
    let after = thread_allocs();
    assert!(acc.is_finite());
    assert_eq!(
        after - before,
        0,
        "workspace acquisition path allocated {} times over {} calls",
        after - before,
        2 * 3 * queries.len()
    );
}
