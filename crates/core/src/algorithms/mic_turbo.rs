//! mic-TuRBO (extension): multi-infill-criteria acquisition inside a
//! trust region.
//!
//! The paper's discussion closes with: "Combining the strength of the
//! different approaches remains to be investigated. For example, a
//! multi-infill-criterion TuRBO can easily be considered and
//! implemented." This module is exactly that combination: TuRBO's
//! lengthscale-shaped trust region provides the restricted (fast,
//! exploitation-leaning) search space, and the batch inside it is built
//! by the mic-q-EGO EI/UCB pair loop instead of joint MC q-EI.

use crate::budget::Budget;
use crate::engine::{AlgoConfig, Engine};
use crate::record::RunRecord;
use pbo_problems::Problem;

/// Drive a prepared engine with mic-TuRBO to budget exhaustion.
pub fn drive(e: Engine) -> RunRecord {
    super::drive_stepper(super::AlgorithmKind::MicTurbo, e)
}

/// Run mic-TuRBO to budget exhaustion.
pub fn run(problem: &dyn Problem, budget: Budget, cfg: AlgoConfig, seed: u64) -> RunRecord {
    let e = Engine::builder(problem)
        .budget(budget)
        .config(cfg)
        .seed(seed)
        .algorithm("mic-turbo")
        .build()
        .expect("invalid mic-TuRBO configuration");
    drive(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbo_problems::SyntheticFn;

    #[test]
    fn runs_and_improves() {
        let p = SyntheticFn::ackley(3);
        let budget = Budget::cycles(5, 2).with_initial_samples(10);
        let r = run(&p, budget, AlgoConfig::test_profile(), 3);
        assert_eq!(r.algorithm, "mic-turbo");
        assert_eq!(r.n_cycles(), 5);
        let doe_best: f64 = r.y_min[..10].iter().copied().fold(f64::INFINITY, f64::min);
        assert!(r.best_y() <= doe_best);
    }

    #[test]
    fn handles_odd_batch_sizes() {
        let p = SyntheticFn::rosenbrock(3);
        let budget = Budget::cycles(2, 3).with_initial_samples(8);
        let r = run(&p, budget, AlgoConfig::test_profile(), 5);
        assert_eq!(r.n_simulations(), 8 + 6);
    }
}
