//! Sobol low-discrepancy sequences.
//!
//! The generator is a textbook Bratley–Fox/Antonov–Saleev Gray-code Sobol
//! sequence. Primitive polynomials over GF(2) are **generated
//! programmatically** (irreducibility + order test against the factored
//! group order `2^s - 1`) instead of shipping the Joe–Kuo table, and the
//! free initial direction numbers `m_k` (any odd `m_k < 2^k` is valid)
//! are drawn from a fixed SplitMix64 stream.
//!
//! Fidelity note (recorded in DESIGN.md): this yields a mathematically
//! valid digital (t,s)-sequence with the same asymptotic discrepancy as a
//! Joe–Kuo-parameterised Sobol sequence; only the constants of the 2-D
//! projection quality differ. For the q-EI base samples used here
//! (dimension ≤ 32) the difference is immaterial, and the optional XOR
//! scrambling randomises the digits anyway.

use crate::seed::splitmix64;

/// Bits of resolution per coordinate.
const BITS: u32 = 31;

/// Fixed stream seed for the free initial direction numbers; changing it
/// changes the (equally valid) parameterisation of the sequence.
const DIRECTION_SEED: u64 = 0x5EED_D14E_C710_0B01;

/// Find primitive polynomials over GF(2) in increasing degree order.
///
/// A polynomial of degree `s` (bitmask with bit `s` = leading coeff) is
/// primitive iff `x` has multiplicative order `2^s - 1` in
/// `GF(2)[x]/(p)`.
fn primitive_polynomials(count: usize) -> Vec<u64> {
    let mut out = Vec::with_capacity(count);
    let mut degree: u32 = 1;
    while out.len() < count {
        assert!(degree <= 24, "requested more Sobol dimensions than supported");
        let lo = 1u64 << degree;
        let hi = 1u64 << (degree + 1);
        // Constant term must be 1 for primitivity.
        let mut p = lo | 1;
        while p < hi && out.len() < count {
            if is_primitive(p, degree) {
                out.push(p);
            }
            p += 2;
        }
        degree += 1;
    }
    out
}

/// Multiply two GF(2) polynomials modulo `modulus` (degree `deg`).
fn polymulmod(mut a: u64, mut b: u64, modulus: u64, deg: u32) -> u64 {
    let mut r = 0u64;
    while b != 0 {
        if b & 1 != 0 {
            r ^= a;
        }
        b >>= 1;
        a <<= 1;
        if a & (1 << deg) != 0 {
            a ^= modulus;
        }
    }
    r
}

/// `x^e mod modulus` over GF(2).
fn polypowmod(mut e: u64, modulus: u64, deg: u32) -> u64 {
    let mut base = 2u64; // the polynomial `x`
    let mut r = 1u64;
    while e != 0 {
        if e & 1 != 0 {
            r = polymulmod(r, base, modulus, deg);
        }
        base = polymulmod(base, base, modulus, deg);
        e >>= 1;
    }
    r
}

/// Prime factors of `n` by trial division (n <= 2^24 here).
fn prime_factors(mut n: u64) -> Vec<u64> {
    let mut fs = Vec::new();
    let mut d = 2;
    while d * d <= n {
        if n.is_multiple_of(d) {
            fs.push(d);
            while n.is_multiple_of(d) {
                n /= d;
            }
        }
        d += 1;
    }
    if n > 1 {
        fs.push(n);
    }
    fs
}

/// Primitivity test for polynomial `p` of degree `s`.
fn is_primitive(p: u64, s: u32) -> bool {
    let order = (1u64 << s) - 1;
    if polypowmod(order, p, s) != 1 {
        return false;
    }
    for q in prime_factors(order) {
        if polypowmod(order / q, p, s) == 1 {
            return false;
        }
    }
    true
}

/// Per-dimension direction numbers `v_k = m_k << (BITS - k)`.
fn direction_numbers(dim_index: usize, poly: u64, seed: u64) -> [u32; BITS as usize] {
    let s = 63 - poly.leading_zeros(); // degree
    let mut m = [0u64; BITS as usize];
    if dim_index == 0 {
        // First dimension: van der Corput sequence, m_k = 1.
        for v in m.iter_mut() {
            *v = 1;
        }
    } else {
        // Free initial values: odd m_k < 2^k from a fixed stream.
        let mut state = seed ^ (dim_index as u64).wrapping_mul(0xA24B_AED4_963E_E407);
        for (k0, v) in m.iter_mut().take(s as usize).enumerate() {
            let k = (k0 + 1) as u32;
            *v = (splitmix64(&mut state) % (1u64 << (k - 1))) * 2 + 1;
        }
        // Recurrence: m_k = (XOR over interior coeffs a_i of 2^i m_{k-i})
        //             XOR 2^s m_{k-s} XOR m_{k-s}.
        for k in s as usize..BITS as usize {
            let mut mk = m[k - s as usize] ^ (m[k - s as usize] << s);
            for i in 1..s {
                if poly & (1 << (s - i)) != 0 {
                    mk ^= m[k - i as usize] << i;
                }
            }
            m[k] = mk;
        }
    }
    let mut v = [0u32; BITS as usize];
    for k in 0..BITS as usize {
        v[k] = (m[k] << (BITS as usize - k - 1)) as u32;
    }
    v
}

/// Gray-code Sobol sequence over the `dim`-dimensional unit cube.
#[derive(Debug, Clone)]
pub struct Sobol {
    dim: usize,
    index: u64,
    state: Vec<u32>,
    v: Vec<[u32; BITS as usize]>,
    scramble: Vec<u32>,
}

impl Sobol {
    /// Unscrambled sequence. The first emitted point is the origin-free
    /// point at index 1 (the all-zeros index-0 point is skipped, as is
    /// conventional for optimization use).
    pub fn new(dim: usize) -> Self {
        Self::with_scramble_seed(dim, None)
    }

    /// Digit-scrambled sequence: each coordinate stream is XORed with a
    /// random mask derived from `seed` (Owen-style "random digit shift").
    /// Index 0 is emitted too, since it is no longer the origin.
    pub fn scrambled(dim: usize, seed: u64) -> Self {
        Self::with_scramble_seed(dim, Some(seed))
    }

    fn with_scramble_seed(dim: usize, seed: Option<u64>) -> Self {
        assert!(dim >= 1, "Sobol dimension must be >= 1");
        let polys = primitive_polynomials(dim.max(2) - 1);
        let mut v = Vec::with_capacity(dim);
        // Dimension 0 uses the degenerate "van der Corput" direction
        // numbers; dimensions 1.. use successive primitive polynomials.
        v.push(direction_numbers(0, 0b11, 0));
        for d in 1..dim {
            v.push(direction_numbers(d, polys[d - 1], DIRECTION_SEED));
        }
        let scramble = match seed {
            None => vec![0u32; dim],
            Some(s) => {
                let mut state = s;
                (0..dim)
                    .map(|_| (splitmix64(&mut state) >> 33) as u32 & ((1 << BITS) - 1))
                    .collect()
            }
        };
        let skip_origin = seed.is_none();
        let mut sobol = Sobol { dim, index: 0, state: vec![0; dim], v, scramble };
        if skip_origin {
            sobol.advance();
        }
        sobol
    }

    /// Dimension of the sequence.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Advance the Gray-code state by one index.
    fn advance(&mut self) {
        // c = position of the lowest zero bit of `index`.
        let c = (!self.index).trailing_zeros() as usize;
        debug_assert!(c < BITS as usize, "Sobol sequence exhausted");
        for d in 0..self.dim {
            self.state[d] ^= self.v[d][c];
        }
        self.index += 1;
    }

    /// Next point in `[0,1)^dim`.
    pub fn next_point(&mut self) -> Vec<f64> {
        let scale = 1.0 / (1u64 << BITS) as f64;
        let p = (0..self.dim)
            .map(|d| (self.state[d] ^ self.scramble[d]) as f64 * scale)
            .collect();
        self.advance();
        p
    }

    /// Generate `n` points as rows of a flat row-major buffer.
    pub fn sample(&mut self, n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|_| self.next_point()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_dimension_is_van_der_corput() {
        let mut s = Sobol::new(1);
        let pts: Vec<f64> = (0..7).map(|_| s.next_point()[0]).collect();
        // Gray-code van der Corput visits {1/2, 3/4, 1/4, 3/8, 7/8, 5/8, 1/8}.
        let expect = [0.5, 0.75, 0.25, 0.375, 0.875, 0.625, 0.125];
        for (p, e) in pts.iter().zip(&expect) {
            assert!((p - e).abs() < 1e-12, "{p} vs {e}");
        }
    }

    #[test]
    fn points_are_in_unit_cube_and_distinct() {
        let mut s = Sobol::new(6);
        let pts = s.sample(512);
        for p in &pts {
            assert_eq!(p.len(), 6);
            assert!(p.iter().all(|&x| (0.0..1.0).contains(&x)));
        }
        // Gray-code Sobol never repeats within 2^BITS points.
        for i in 1..pts.len() {
            assert_ne!(pts[i - 1], pts[i]);
        }
    }

    #[test]
    fn balance_property_powers_of_two() {
        // Over indices 0..2^k each dimension puts exactly half the points
        // in [0, 0.5) (the defining net property). The unscrambled
        // sequence skips the origin, so its window 1..=2^k is balanced to
        // within one point.
        let mut s = Sobol::new(5);
        let pts = s.sample(256);
        for d in 0..5 {
            let below = pts.iter().filter(|p| p[d] < 0.5).count() as i64;
            assert!((below - 128).abs() <= 1, "dimension {d}: {below}");
        }
    }

    #[test]
    fn mean_approaches_half() {
        let mut s = Sobol::new(8);
        let pts = s.sample(1024);
        for d in 0..8 {
            let mean: f64 = pts.iter().map(|p| p[d]).sum::<f64>() / 1024.0;
            assert!((mean - 0.5).abs() < 0.01, "dim {d}: {mean}");
        }
    }

    #[test]
    fn scrambled_is_deterministic_per_seed() {
        let a = Sobol::scrambled(4, 9).sample(16);
        let b = Sobol::scrambled(4, 9).sample(16);
        let c = Sobol::scrambled(4, 10).sample(16);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn scrambled_preserves_balance() {
        let mut s = Sobol::scrambled(3, 1234);
        let pts = s.sample(256);
        for d in 0..3 {
            let below = pts.iter().filter(|p| p[d] < 0.5).count();
            assert_eq!(below, 128, "dimension {d}");
        }
    }

    #[test]
    fn primitive_poly_generation_sane() {
        let ps = primitive_polynomials(10);
        assert_eq!(ps[0], 0b11); // x + 1
        assert_eq!(ps[1], 0b111); // x^2 + x + 1 (only primitive quadratic)
        // All returned masks have constant term 1 and are primitive.
        for &p in &ps {
            let s = 63 - p.leading_zeros();
            assert!(p & 1 == 1);
            assert!(is_primitive(p, s));
        }
        // Degrees are non-decreasing.
        for w in ps.windows(2) {
            assert!(w[1].leading_zeros() <= w[0].leading_zeros());
        }
    }

    #[test]
    fn high_dimension_supported() {
        let mut s = Sobol::new(64);
        let p = s.next_point();
        assert_eq!(p.len(), 64);
    }
}
