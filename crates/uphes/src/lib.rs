//! # pbo-uphes — Underground Pumped Hydro-Energy Storage simulator
//!
//! A from-scratch stand-in for the licensed Matlab/RAO simulator used in
//! the paper (Toubeau et al., IET GTD 2019): a techno-economic
//! simulation of a Maizeret-like UPHES plant that maps a 12-dimensional
//! daily decision vector to an expected profit in EUR.
//!
//! The paper treats its simulator as a black box with four properties
//! that drive the optimization difficulty, all of which this model has
//! by construction:
//!
//! 1. **discontinuous** — cavitation zones of the pump-turbine forbid
//!    head-dependent power bands; the pump/turbine/idle mode split makes
//!    the feasible power set disconnected ([`machine`], [`schedule`]);
//! 2. **nonlinear, non-convex** — machine efficiency is a bumpy surface
//!    over (power, head), and the net head itself moves with the
//!    nonlinear reservoir geometry ([`geometry`], head effects);
//! 3. **mixed-integer in disguise** — each market block chooses among
//!    pump ∈ [−8,−6] MW, idle, or turbine ∈ \[4,8\] MW ([`schedule`]);
//! 4. **uncertain** — profit is averaged over price / inflow / reserve
//!    activation scenarios with common random numbers ([`scenario`]).
//!
//! Decision vector (see [`schedule::Schedule`]): 8 energy-market block
//! setpoints (3-hour blocks) + 4 reserve-capacity offers (6-hour
//! blocks), exactly the paper's `R^12` layout.
//!
//! The headline entry point is [`simulator::Simulator`].

pub mod geometry;
pub mod machine;
pub mod market;
pub mod scenario;
pub mod schedule;
pub mod simulator;

pub use simulator::{PlantConfig, ProfitBreakdown, Simulator};

/// Quarter-hours in the daily horizon.
pub const STEPS: usize = 96;
/// Hours per simulation step.
pub const STEP_HOURS: f64 = 0.25;
/// Number of energy-market blocks (3 h each).
pub const ENERGY_BLOCKS: usize = 8;
/// Number of reserve-market blocks (6 h each).
pub const RESERVE_BLOCKS: usize = 4;
/// Dimension of the decision vector.
pub const DECISION_DIM: usize = ENERGY_BLOCKS + RESERVE_BLOCKS;

/// Water density [kg/m³].
pub const RHO: f64 = 1000.0;
/// Gravity [m/s²].
pub const G: f64 = 9.81;
