//! GP-UCB-PE: UCB leader + pure-exploration fillers (Contal et al.
//! 2013, "Parallel Gaussian Process Optimization with Upper Confidence
//! Bound and Pure Exploration").
//!
//! Per cycle: one multistart UCB maximization picks the leader, then
//! the remaining q − 1 points are chosen greedily as the maximizers of
//! the *posterior variance conditioned on everything already in the
//! batch* over a Sobol candidate set — conditioning on a point's
//! location needs no function value, so each filler is a rank-1 Schur
//! downdate of the joint covariance, O(n_cand²) per pick and no inner
//! optimization. That near-free filler loop is the method's selling
//! point (the per-cycle acquisition cost is pinned by `bench_gate.sh`),
//! and the reason it needs no fantasy values: exploration is driven by
//! geometry alone.

use super::acq_multistart;
use crate::budget::Budget;
use crate::engine::{AlgoConfig, Engine};
use crate::record::RunRecord;
use pbo_acq::single::{optimize_single, UpperConfidenceBound};
use pbo_gp::Surrogate;
use pbo_linalg::Matrix;
use pbo_opt::Bounds;
use pbo_problems::Problem;
use pbo_sampling::sobol::Sobol;

/// Variances below this are treated as already-determined: conditioning
/// on such a point would divide by ~0 and the downdate is skipped.
const VAR_FLOOR: f64 = 1e-12;

/// Build one GP-UCB-PE batch of `q` candidates (UCB leader + q − 1
/// variance-greedy fillers from `n_cand` Sobol candidates). Returns the
/// batch plus the leader's multistart restart shortfall — the fillers
/// run no restarts at all.
pub fn gp_ucb_pe_batch(
    gp: &dyn Surrogate,
    bounds: &Bounds,
    q: usize,
    n_cand: usize,
    cfg: &AlgoConfig,
    seed: u64,
) -> (Vec<Vec<f64>>, usize) {
    let ucb = UpperConfidenceBound { beta: cfg.acq.ucb_beta };
    let ms = acq_multistart(cfg, seed);
    let leader = optimize_single(gp, &ucb, bounds, &[], &ms);
    let mut batch = vec![leader.x.clone()];
    if q == 1 {
        return (batch, leader.restart_shortfall);
    }

    // Row 0 is the leader; rows 1..=n_cand are the filler candidates.
    // One joint posterior over all of them gives every covariance the
    // greedy conditioning loop will ever need.
    let d = gp.dim();
    let n_cand = n_cand.max((q - 1) * 4);
    let mut sobol = Sobol::scrambled(d, seed);
    let mut pts = Matrix::zeros(0, d);
    pts.push_row(&leader.x).expect("leader width");
    for _ in 0..n_cand {
        pts.push_row(&sobol.next_point()).expect("candidate width");
    }
    let Ok((_, cov)) = gp.posterior_joint(&pts) else {
        // Degenerate posterior: fall back to the first fillers.
        for i in 0..q - 1 {
            batch.push(pts.row(1 + i % n_cand).to_vec());
        }
        return (batch, leader.restart_shortfall);
    };

    // Greedy pure exploration: repeatedly condition the covariance on
    // the latest batch member (C ← C − c cᵀ / C_kk, the Schur
    // complement — location-only, no observation value involved) and
    // take the candidate with the largest remaining variance.
    let m = n_cand + 1;
    let mut c: Vec<f64> = (0..m * m).map(|idx| cov[(idx / m, idx % m)]).collect();
    let mut chosen: Vec<usize> = vec![0];
    for _ in 1..q {
        let k = *chosen.last().expect("non-empty batch");
        let pivot = c[k * m + k];
        if pivot > VAR_FLOOR {
            for i in 0..m {
                let ci = c[i * m + k] / pivot;
                for j in 0..m {
                    c[i * m + j] -= ci * c[k * m + j];
                }
            }
        }
        let mut best = (f64::NEG_INFINITY, 1usize);
        for i in 1..m {
            let var = c[i * m + i];
            if !chosen.contains(&i) && var.total_cmp(&best.0).is_gt() {
                best = (var, i);
            }
        }
        chosen.push(best.1);
        batch.push(pts.row(best.1).to_vec());
    }
    (batch, leader.restart_shortfall)
}

/// Drive a prepared engine with GP-UCB-PE to budget exhaustion.
pub fn drive(e: Engine) -> RunRecord {
    super::drive_stepper(super::AlgorithmKind::GpUcbPe, e)
}

/// Run GP-UCB-PE to budget exhaustion.
pub fn run(problem: &dyn Problem, budget: Budget, cfg: AlgoConfig, seed: u64) -> RunRecord {
    let e = Engine::builder(problem)
        .budget(budget)
        .config(cfg)
        .seed(seed)
        .algorithm("gp-ucb-pe")
        .build()
        .expect("invalid GP-UCB-PE configuration");
    drive(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbo_gp::kernel::{Kernel, KernelType};
    use pbo_gp::GaussianProcess;
    use pbo_problems::SyntheticFn;

    fn toy_gp() -> GaussianProcess {
        let xs = [0.05, 0.3, 0.55, 0.8, 0.95];
        let x = Matrix::from_rows(&xs.iter().map(|&v| vec![v]).collect::<Vec<_>>()).unwrap();
        let y: Vec<f64> = xs.iter().map(|&v: &f64| (v - 0.4) * (v - 0.4)).collect();
        let mut kernel = Kernel::new(KernelType::Matern52, 1);
        kernel.lengthscales = vec![0.25];
        GaussianProcess::new(x, &y, kernel, 1e-6).unwrap()
    }

    fn unit_bounds(d: usize) -> Bounds {
        Bounds::unit(d)
    }

    #[test]
    fn batch_has_q_distinct_points_in_cube() {
        let gp = toy_gp();
        let cfg = AlgoConfig::test_profile();
        let (batch, _) = gp_ucb_pe_batch(&gp, &unit_bounds(1), 4, 64, &cfg, 7);
        assert_eq!(batch.len(), 4);
        for p in &batch {
            assert!((0.0..=1.0).contains(&p[0]));
        }
        for i in 0..batch.len() {
            for j in 0..i {
                assert_ne!(batch[i], batch[j]);
            }
        }
    }

    #[test]
    fn fillers_avoid_the_training_data() {
        // Pure-exploration fillers maximize *conditioned* variance, so
        // none of them should sit on top of an observed point (where
        // the posterior variance is ~noise-level).
        let gp = toy_gp();
        let cfg = AlgoConfig::test_profile();
        let (batch, _) = gp_ucb_pe_batch(&gp, &unit_bounds(1), 5, 128, &cfg, 3);
        for p in &batch[1..] {
            for &obs in &[0.05, 0.3, 0.55, 0.8, 0.95] {
                assert!((p[0] - obs).abs() > 1e-3, "filler {p:?} on a datum {obs}");
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let gp = toy_gp();
        let cfg = AlgoConfig::test_profile();
        let a = gp_ucb_pe_batch(&gp, &unit_bounds(1), 4, 64, &cfg, 11);
        let b = gp_ucb_pe_batch(&gp, &unit_bounds(1), 4, 64, &cfg, 11);
        assert_eq!(a, b);
    }

    #[test]
    fn full_run_improves_over_doe() {
        let p = SyntheticFn::ackley(3);
        let budget = Budget::cycles(4, 2).with_initial_samples(10);
        let r = run(&p, budget, AlgoConfig::test_profile(), 3);
        assert_eq!(r.algorithm, "gp-ucb-pe");
        assert_eq!(r.n_simulations(), 10 + 8);
        let doe_best: f64 = r.y_min[..10].iter().copied().fold(f64::INFINITY, f64::min);
        assert!(r.best_y() <= doe_best);
    }
}
