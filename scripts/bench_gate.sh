#!/bin/bash
# Performance regression gate over the criterion-shim benches.
#
#   scripts/bench_gate.sh baseline   # record target/bench_gate/baseline.jsonl
#   scripts/bench_gate.sh check      # re-run quick profile, fail on >15% regression
#   scripts/bench_gate.sh smoke      # one bench run + self-check of the gate machinery
#
# The gate pins a handful of headline cases (below) and compares their
# per-iteration minimum against the recorded baseline. `min_ns` is used
# rather than the mean because it is the statistic least sensitive to
# scheduler noise on a loaded host. All runs use the quick
# PBO_BENCH_SMOKE profile: the point is catching order-of-magnitude
# rot (an accidentally serialized hot path, a lost cache), not
# micro-benchmarking — real measurements live in BENCH_*.json.
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-check}"
GATE_DIR="target/bench_gate"
BASELINE="${BENCH_GATE_BASELINE:-$GATE_DIR/baseline.jsonl}"
TOL_PCT="${BENCH_GATE_TOL_PCT:-15}"

# Headline cases; all must exist under the PBO_BENCH_SMOKE truncation.
PINNED=(
  "fit_scaling/mll_grad_workspace/64"
  "fit_scaling/fit_workspace/64"
  "fit_scaling/gp_update/256q8"
  "fit_scaling/chol_blocked/512"
)

run_benches() { # out-file
  local out="$1"
  mkdir -p "$(dirname "$out")"
  rm -f "$out"
  # The bench binary runs with the *package* directory as its CWD, so
  # the shim output path must be absolute.
  local out_abs
  out_abs="$(cd "$(dirname "$out")" && pwd)/$(basename "$out")"
  PBO_BENCH_SMOKE=1 CRITERION_SHIM_OUT="$out_abs" \
    cargo bench -q -p pbo-bench --bench fit_scaling >/dev/null
}

min_ns() { # file id -> prints min_ns or nothing
  grep -F "\"id\":\"$2\"" "$1" | tail -1 |
    sed -E 's/.*"min_ns":([0-9.eE+-]+).*/\1/'
}

require_pinned() { # file
  local missing=0
  for id in "${PINNED[@]}"; do
    if [[ -z "$(min_ns "$1" "$id")" ]]; then
      echo "bench_gate: pinned case '$id' missing from $1" >&2
      missing=1
    fi
  done
  return "$missing"
}

compare() { # baseline-file current-file
  local fail=0
  for id in "${PINNED[@]}"; do
    local base cur
    base="$(min_ns "$1" "$id")"
    cur="$(min_ns "$2" "$id")"
    if [[ -z "$base" || -z "$cur" ]]; then
      echo "bench_gate: '$id' missing (baseline='$base' current='$cur')" >&2
      fail=1
      continue
    fi
    if awk -v b="$base" -v c="$cur" -v tol="$TOL_PCT" \
        'BEGIN { exit !(c <= b * (1 + tol / 100)) }'; then
      printf 'bench_gate: OK   %-40s %12.0f -> %12.0f ns\n' "$id" "$base" "$cur"
    else
      printf 'bench_gate: FAIL %-40s %12.0f -> %12.0f ns (>%s%% slower)\n' \
        "$id" "$base" "$cur" "$TOL_PCT" >&2
      fail=1
    fi
  done
  return "$fail"
}

case "$MODE" in
  baseline)
    run_benches "$BASELINE"
    require_pinned "$BASELINE"
    echo "bench_gate: baseline recorded at $BASELINE"
    ;;
  check)
    if [[ ! -f "$BASELINE" ]]; then
      echo "bench_gate: no baseline at $BASELINE — run 'scripts/bench_gate.sh baseline' first" >&2
      exit 1
    fi
    current="$GATE_DIR/current.jsonl"
    run_benches "$current"
    compare "$BASELINE" "$current"
    echo "bench_gate: no pinned case regressed by more than ${TOL_PCT}%."
    ;;
  smoke)
    # One bench run exercises capture; self-comparison exercises the
    # parse/compare plumbing without back-to-back-run flakiness.
    smoke_out="$GATE_DIR/smoke.jsonl"
    run_benches "$smoke_out"
    require_pinned "$smoke_out"
    compare "$smoke_out" "$smoke_out"
    echo "bench_gate: smoke passed."
    ;;
  *)
    echo "usage: scripts/bench_gate.sh [baseline|check|smoke]" >&2
    exit 2
    ;;
esac
