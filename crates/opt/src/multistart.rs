//! Multi-start driver for the inner optimizers.
//!
//! BoTorch's `optimize_acqf` evaluates a raw-sample batch, keeps the best
//! `num_restarts` as initial conditions and polishes each with L-BFGS-B.
//! This module implements the same recipe: Sobol raw candidates scored by
//! the cheap objective value, top-k selection (plus caller warm starts),
//! gradient-based polishing, best-of.

use crate::lbfgs::{self, LbfgsConfig};
use crate::neldermead::{self, NelderMeadConfig};
use crate::{Bounds, GradObjective, OptResult};
use pbo_sampling::sobol::Sobol;

/// Configuration of the multistart search.
#[derive(Debug, Clone)]
pub struct MultistartConfig {
    /// Raw Sobol candidates scored before polishing.
    pub raw_samples: usize,
    /// Local polishes performed (top-k of the raw scores + warm starts).
    pub restarts: usize,
    /// Local optimizer settings.
    pub lbfgs: LbfgsConfig,
    /// Seed for the scrambled Sobol raw batch.
    pub seed: u64,
}

impl Default for MultistartConfig {
    fn default() -> Self {
        MultistartConfig {
            raw_samples: 128,
            restarts: 8,
            lbfgs: LbfgsConfig::default(),
            seed: 0,
        }
    }
}

/// Minimize with Sobol raw sampling + L-BFGS polishing.
///
/// `warm_starts` are always polished in addition to the raw top-k (the
/// acquisition loop passes the incumbent and the previous cycle's
/// candidate here).
pub fn minimize_multistart(
    obj: &dyn GradObjective,
    bounds: &Bounds,
    warm_starts: &[Vec<f64>],
    cfg: &MultistartConfig,
) -> OptResult {
    let dim = bounds.dim();
    let mut sobol = Sobol::scrambled(dim, cfg.seed);
    let mut scored: Vec<(f64, Vec<f64>)> = Vec::with_capacity(cfg.raw_samples);
    let mut evals = 0;
    for _ in 0..cfg.raw_samples {
        let x = bounds.from_unit(&sobol.next_point());
        let v = obj.value(&x);
        evals += 1;
        if v.is_finite() {
            scored.push((v, x));
        }
    }
    scored.sort_by(|a, b| a.0.total_cmp(&b.0));

    let mut starts: Vec<Vec<f64>> = Vec::with_capacity(cfg.restarts + warm_starts.len());
    for w in warm_starts {
        let mut w = w.clone();
        bounds.clamp(&mut w);
        starts.push(w);
    }
    starts.extend(scored.into_iter().take(cfg.restarts).map(|(_, x)| x));
    if starts.is_empty() {
        starts.push(bounds.center());
    }

    let mut best: Option<OptResult> = None;
    let mut total_iters = 0;
    for s in &starts {
        let r = lbfgs::minimize(obj, bounds, s, &cfg.lbfgs);
        evals += r.evals;
        total_iters += r.iters;
        if r.value.is_finite()
            && best.as_ref().is_none_or(|b| r.value < b.value)
        {
            best = Some(r);
        }
    }
    let mut out = best.unwrap_or(OptResult {
        x: bounds.center(),
        value: obj.value(&bounds.center()),
        evals: evals + 1,
        iters: 0,
        converged: false,
    });
    out.evals = evals;
    out.iters = total_iters;
    out
}

/// Derivative-free multistart (Nelder–Mead polishing); same raw-sample
/// recipe for objectives without trustworthy gradients.
pub fn minimize_multistart_df(
    f: &dyn Fn(&[f64]) -> f64,
    bounds: &Bounds,
    warm_starts: &[Vec<f64>],
    restarts: usize,
    raw_samples: usize,
    seed: u64,
    nm: &NelderMeadConfig,
) -> OptResult {
    let dim = bounds.dim();
    let mut sobol = Sobol::scrambled(dim, seed);
    let mut scored: Vec<(f64, Vec<f64>)> = Vec::with_capacity(raw_samples);
    let mut evals = 0;
    for _ in 0..raw_samples {
        let x = bounds.from_unit(&sobol.next_point());
        let v = f(&x);
        evals += 1;
        if v.is_finite() {
            scored.push((v, x));
        }
    }
    scored.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut starts: Vec<Vec<f64>> = warm_starts
        .iter()
        .map(|w| {
            let mut w = w.clone();
            bounds.clamp(&mut w);
            w
        })
        .collect();
    starts.extend(scored.into_iter().take(restarts).map(|(_, x)| x));
    if starts.is_empty() {
        starts.push(bounds.center());
    }
    let mut best: Option<OptResult> = None;
    for s in &starts {
        let r = neldermead::minimize(f, bounds, s, nm);
        evals += r.evals;
        if r.value.is_finite() && best.as_ref().is_none_or(|b| r.value < b.value) {
            best = Some(r);
        }
    }
    let mut out = best.unwrap();
    out.evals = evals;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FnGradObjective;

    /// Two-basin function: local minimum 0.1 at x=-0.5, global 0 at x=0.7.
    fn two_basins() -> impl GradObjective {
        let f = |x: &[f64]| {
            let a = (x[0] + 0.5).powi(2) + 0.1;
            let b = 4.0 * (x[0] - 0.7).powi(2);
            a.min(b)
        };
        FnGradObjective::new(1, f, move |x: &[f64]| {
            let a = (x[0] + 0.5).powi(2) + 0.1;
            let b = 4.0 * (x[0] - 0.7).powi(2);
            let g = if a < b { 2.0 * (x[0] + 0.5) } else { 8.0 * (x[0] - 0.7) };
            (a.min(b), vec![g])
        })
    }

    #[test]
    fn multistart_escapes_local_minimum() {
        let obj = two_basins();
        let b = Bounds::cube(1, -2.0, 2.0);
        // Warm start in the wrong basin; Sobol raw samples find the right one.
        let r = minimize_multistart(&obj, &b, &[vec![-0.5]], &MultistartConfig::default());
        assert!((r.x[0] - 0.7).abs() < 1e-3, "got {:?}", r.x);
        assert!(r.value < 1e-5);
    }

    #[test]
    fn zero_restarts_still_polishes_warm_starts() {
        let obj = two_basins();
        let b = Bounds::cube(1, -2.0, 2.0);
        let cfg = MultistartConfig { raw_samples: 0, restarts: 0, ..Default::default() };
        let r = minimize_multistart(&obj, &b, &[vec![0.6]], &cfg);
        assert!((r.x[0] - 0.7).abs() < 1e-4);
    }

    #[test]
    fn df_variant_matches_on_smooth_problem() {
        let f = |x: &[f64]| (x[0] - 0.25).powi(2) + (x[1] - 0.75).powi(2);
        let b = Bounds::unit(2);
        let r = minimize_multistart_df(&f, &b, &[], 4, 32, 7, &NelderMeadConfig::default());
        assert!((r.x[0] - 0.25).abs() < 1e-3 && (r.x[1] - 0.75).abs() < 1e-3);
    }

    #[test]
    fn deterministic_given_seed() {
        let obj = two_basins();
        let b = Bounds::cube(1, -2.0, 2.0);
        let cfg = MultistartConfig { seed: 42, ..Default::default() };
        let r1 = minimize_multistart(&obj, &b, &[], &cfg);
        let r2 = minimize_multistart(&obj, &b, &[], &cfg);
        assert_eq!(r1.x, r2.x);
        assert_eq!(r1.value, r2.value);
    }
}
