//! Observability contract tests at the outermost API.
//!
//! Three guarantees are pinned here:
//!
//! 1. **Reconciliation** — folding a run's event stream reproduces the
//!    aggregates of its [`RunRecord`] *exactly* (integer counts equal,
//!    f64 sums bit-equal), for every algorithm, clean and faulty.
//! 2. **Non-perturbation** — a run is bit-identical whether observed by
//!    nothing, by a collector, or by a JSONL trace writer.
//! 3. **Typed configuration errors** — the builder/facade rejects
//!    invalid configurations with distinct [`ConfigError`] values
//!    instead of panicking.

use pbo::core::observe::jsonl::validate_line;
use pbo::prelude::*;
use std::sync::{Arc, Mutex};

fn six_algorithms() -> Vec<AlgorithmKind> {
    let mut v: Vec<AlgorithmKind> = AlgorithmKind::paper_set().to_vec();
    v.push(AlgorithmKind::RandomSearch);
    v
}

fn test_cfg() -> RunConfig {
    RunConfig::cycles(4, 2)
        .budget(Budget::cycles(4, 2).with_initial_samples(10))
        .seed(17)
}

/// Fold an event stream into the aggregates a RunRecord reports, using
/// the same additions in the same order so f64 sums are bit-equal.
struct Folded {
    design_evaluated: usize,
    batch_evals: usize,
    n_cycles: usize,
    fit: f64,
    acq: f64,
    sim: f64,
    faults: FaultCounters,
    finished: Option<(usize, usize, f64, f64)>,
}

fn fold(events: &[Event]) -> Folded {
    let mut f = Folded {
        design_evaluated: 0,
        batch_evals: 0,
        n_cycles: 0,
        fit: 0.0,
        acq: 0.0,
        sim: 0.0,
        faults: FaultCounters::default(),
        finished: None,
    };
    for e in events {
        match e {
            Event::DesignEvaluated { evaluated, faults, .. } => {
                f.design_evaluated = *evaluated;
                // Mirrors RunRecord::fault_totals(): DoE tally first.
                f.faults = *faults;
            }
            Event::FitCompleted { virtual_s, .. } => f.fit += virtual_s,
            Event::AcquisitionCompleted { virtual_s, .. } => f.acq += virtual_s,
            Event::BatchEvaluated { n_evals, faults, virtual_s, .. } => {
                f.n_cycles += 1;
                f.batch_evals += n_evals;
                f.sim += virtual_s;
                f.faults.merge(faults);
            }
            Event::RunFinished { n_cycles, n_simulations, best_y_min, final_clock } => {
                f.finished = Some((*n_cycles, *n_simulations, *best_y_min, *final_clock));
            }
            _ => {}
        }
    }
    f
}

fn assert_reconciles(r: &RunRecord, events: &[Event], label: &str) {
    let f = fold(events);
    assert_eq!(f.n_cycles, r.n_cycles(), "{label}: cycle count");
    assert_eq!(
        f.design_evaluated + f.batch_evals,
        r.n_simulations(),
        "{label}: simulation count"
    );
    let (fit, acq, sim) = r.time_split();
    assert_eq!(f.fit.to_bits(), fit.to_bits(), "{label}: fit time");
    assert_eq!(f.acq.to_bits(), acq.to_bits(), "{label}: acq time");
    assert_eq!(f.sim.to_bits(), sim.to_bits(), "{label}: sim time");
    let t = r.fault_totals();
    assert_eq!(f.faults.panics, t.panics, "{label}: panics");
    assert_eq!(f.faults.nan_quarantined, t.nan_quarantined, "{label}: nan");
    assert_eq!(f.faults.inf_quarantined, t.inf_quarantined, "{label}: inf");
    assert_eq!(f.faults.stragglers, t.stragglers, "{label}: stragglers");
    assert_eq!(f.faults.timeouts, t.timeouts, "{label}: timeouts");
    assert_eq!(f.faults.retries, t.retries, "{label}: retries");
    assert_eq!(f.faults.imputed, t.imputed, "{label}: imputed");
    assert_eq!(f.faults.dropped, t.dropped, "{label}: dropped");
    assert_eq!(
        f.faults.virtual_secs_lost.to_bits(),
        t.virtual_secs_lost.to_bits(),
        "{label}: virtual seconds lost"
    );
    let (nc, ns, best, clock) = f.finished.expect("run_finished present");
    assert_eq!(nc, r.n_cycles(), "{label}: finished cycles");
    assert_eq!(ns, r.n_simulations(), "{label}: finished sims");
    let best_min = if r.maximize { -r.best_y() } else { r.best_y() };
    assert_eq!(best.to_bits(), best_min.to_bits(), "{label}: finished best");
    assert_eq!(clock.to_bits(), r.final_clock.to_bits(), "{label}: finished clock");
}

#[test]
fn event_stream_reconciles_with_run_record_for_all_six_algorithms() {
    let p = SyntheticFn::ackley(4);
    for kind in six_algorithms() {
        let cfg = test_cfg();
        let sink = Arc::new(Mutex::new(CollectingObserver::new()));
        let observed = pbo::run_observed(kind, &p, cfg.clone(), sink.clone()).unwrap();
        let plain = pbo::run(kind, &p, cfg).unwrap();
        // The observer must not perturb the run in any way.
        let pa: Vec<u64> = plain.y_min.iter().map(|v| v.to_bits()).collect();
        let ob: Vec<u64> = observed.y_min.iter().map(|v| v.to_bits()).collect();
        assert_eq!(pa, ob, "{}: observation changed the run", kind.name());
        let events = &sink.lock().unwrap().events;
        // Envelope: one run_started first, one run_finished last.
        assert_eq!(events.first().unwrap().name(), "run_started");
        assert_eq!(events.last().unwrap().name(), "run_finished");
        assert_reconciles(&observed, events, kind.name());
        // Every cycle announces itself; surrogate-based methods fit and
        // acquire once per cycle.
        let counts = |n: &str| events.iter().filter(|e| e.name() == n).count();
        assert_eq!(counts("cycle_started"), observed.n_cycles());
        assert_eq!(counts("batch_evaluated"), observed.n_cycles());
        if kind != AlgorithmKind::RandomSearch {
            assert_eq!(counts("fit_completed"), observed.n_cycles());
            assert_eq!(counts("acquisition_completed"), observed.n_cycles());
        } else {
            assert_eq!(counts("fit_completed"), 0);
            assert_eq!(counts("acquisition_completed"), 0);
        }
    }
}

#[test]
fn faulty_run_reconciles_and_reports_point_faults() {
    pbo::problems::fault::silence_injected_panics();
    let inner = SyntheticFn::ackley(4);
    let p = FaultyProblem::new(&inner, FaultPlan::uniform(23, 0.3));
    let cfg = test_cfg();
    let sink = Arc::new(Mutex::new(CollectingObserver::new()));
    let r = pbo::run_observed(AlgorithmKind::KbQEgo, &p, cfg, sink.clone()).unwrap();
    let events = &sink.lock().unwrap().events;
    assert_reconciles(&r, events, "faulty kb-q-ego");
    // A 30% fault plan must surface per-point fault events, and each
    // must itself carry a non-trivial tally.
    assert!(r.fault_totals().any());
    let faulted: Vec<&Event> =
        events.iter().filter(|e| e.name() == "point_faulted").collect();
    assert!(!faulted.is_empty(), "expected point_faulted events");
    for e in &faulted {
        match e {
            Event::PointFaulted { attempts, faults, .. } => {
                assert!(*attempts >= 1);
                assert!(faults.any() || *attempts > 1);
            }
            _ => unreachable!(),
        }
    }
}

#[test]
fn jsonl_traced_run_is_bit_identical_and_every_line_parses() {
    let p = SyntheticFn::ackley(4);
    let dir = std::env::temp_dir().join("pbo_observability_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("trace_{}.jsonl", std::process::id()));

    let cfg = test_cfg();
    let baseline = pbo::run(AlgorithmKind::MicQEgo, &p, cfg.clone()).unwrap();
    let writer = JsonlTraceWriter::create(&path).unwrap();
    let traced = pbo::run_observed(AlgorithmKind::MicQEgo, &p, cfg, writer).unwrap();

    // Bit-identical results with and without the trace writer.
    let bits = |r: &RunRecord| {
        (
            r.y_min.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            r.cycles
                .iter()
                .map(|c| {
                    (
                        c.fit_time.to_bits(),
                        c.acq_time.to_bits(),
                        c.sim_time.to_bits(),
                        c.clock.to_bits(),
                    )
                })
                .collect::<Vec<_>>(),
            r.final_clock.to_bits(),
        )
    };
    assert_eq!(bits(&baseline), bits(&traced));

    // Every line is strict single-line JSON naming a known event, and
    // the trace's shape matches the record.
    let text = std::fs::read_to_string(&path).unwrap();
    let mut batch_lines = 0;
    let mut total = 0;
    for line in text.lines() {
        let name = validate_line(line).unwrap_or_else(|e| panic!("bad line {line:?}: {e}"));
        if name == "batch_evaluated" {
            batch_lines += 1;
        }
        total += 1;
    }
    assert_eq!(batch_lines, traced.n_cycles());
    // run_started + design_evaluated + per-cycle (cycle_started,
    // fit_completed, acquisition_completed, batch_evaluated) +
    // incumbent improvements + run_finished.
    assert!(total >= 2 + 4 * traced.n_cycles() + 1);
    std::fs::remove_file(&path).ok();
}

#[test]
fn builder_and_facade_reject_invalid_configs_with_typed_errors() {
    let p = SyntheticFn::ackley(3);

    // 1. Zero batch size.
    let mut cfg = test_cfg();
    cfg.budget.batch_size = 0;
    assert_eq!(
        pbo::run(AlgorithmKind::KbQEgo, &p, cfg).unwrap_err(),
        ConfigError::ZeroBatchSize
    );

    // 2. Initial design too small to seed a surrogate.
    let mut cfg = test_cfg();
    cfg.budget.initial_samples = 1;
    assert_eq!(
        pbo::run(AlgorithmKind::Turbo, &p, cfg).unwrap_err(),
        ConfigError::InitialSamplesTooSmall { got: 1 }
    );

    // 3. Non-finite UCB weight.
    let mut cfg = test_cfg();
    cfg.algo.acq.ucb_beta = f64::NAN;
    assert!(matches!(
        pbo::run(AlgorithmKind::MicQEgo, &p, cfg).unwrap_err(),
        ConfigError::Negative { field: "cfg.acq.ucb_beta", .. }
    ));

    // 4. Shrinking retry backoff.
    let mut cfg = test_cfg();
    cfg.algo.ft.backoff_factor = 0.9;
    assert_eq!(
        pbo::run(AlgorithmKind::McQEgo, &p, cfg).unwrap_err(),
        ConfigError::BackoffFactorTooSmall { got: 0.9 }
    );

    // 5. Inverted fit bounds.
    let mut cfg = test_cfg();
    cfg.algo.fit.log_ls_bounds = (2.0, -2.0);
    assert!(matches!(
        pbo::run(AlgorithmKind::BspEgo, &p, cfg).unwrap_err(),
        ConfigError::InvalidFitBounds { field: "cfg.fit.log_ls_bounds", .. }
    ));

    // Errors render as readable messages.
    let msg = ConfigError::ZeroBatchSize.to_string();
    assert!(!msg.is_empty());
    let dyn_err: Box<dyn std::error::Error> = Box::new(ConfigError::EmptyDesign);
    assert!(!dyn_err.to_string().is_empty());
}

#[test]
fn metrics_observer_aggregates_a_run() {
    let p = SyntheticFn::ackley(4);
    let registry = Arc::new(MetricsRegistry::new());
    let metrics = MetricsObserver::new(registry.clone());
    let r = pbo::run_observed(AlgorithmKind::Turbo, &p, test_cfg(), metrics).unwrap();
    let snap = registry.snapshot();
    assert_eq!(snap.counter("engine.cycles"), r.n_cycles() as u64);
    assert_eq!(snap.counter("engine.evaluations"), r.n_simulations() as u64);
    let fits =
        snap.counter("fit.full") + snap.counter("fit.warm") + snap.counter("fit.fallbacks");
    assert_eq!(fits, r.n_cycles() as u64);
}
