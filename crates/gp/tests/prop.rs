#![allow(clippy::needless_range_loop)]

//! Property-based tests of Gaussian-process invariants.

use pbo_gp::kernel::{Kernel, KernelType};
use pbo_gp::GaussianProcess;
use pbo_linalg::Matrix;
use proptest::prelude::*;

/// Random 2-d training set with targets in a bounded range and inputs
/// kept pairwise distinct (proptest may generate near-duplicates; the
/// jitter machinery must cope, but exact-duplicate semantics are tested
/// separately).
fn dataset() -> impl Strategy<Value = (Matrix, Vec<f64>)> {
    prop::collection::vec(((0.0f64..1.0), (0.0f64..1.0), (-10.0f64..10.0)), 3..25).prop_map(
        |rows| {
            let mut x = Matrix::zeros(0, 2);
            let mut y = Vec::new();
            for (a, b, v) in rows {
                x.push_row(&[a, b]).unwrap();
                y.push(v);
            }
            (x, y)
        },
    )
}

fn gp(x: Matrix, y: &[f64], ls: f64, noise: f64) -> GaussianProcess {
    let mut kernel = Kernel::new(KernelType::Matern52, 2);
    kernel.lengthscales = vec![ls; 2];
    GaussianProcess::new(x, y, kernel, noise).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn posterior_variance_never_exceeds_prior((x, y) in dataset(),
                                              px in 0.0f64..1.0, py in 0.0f64..1.0) {
        let model = gp(x, &y, 0.4, 1e-4);
        let (_, var) = model.predict(&[px, py]);
        let (_, scale) = model.standardization();
        // Prior latent variance = outputscale × scale² (standardized).
        let prior = model.kernel().prior_var() * scale * scale;
        prop_assert!(var <= prior * (1.0 + 1e-9) + 1e-12, "var {var} > prior {prior}");
    }

    #[test]
    fn conditioning_never_increases_variance((x, y) in dataset(),
                                             nx in 0.0f64..1.0, ny in 0.0f64..1.0,
                                             px in 0.0f64..1.0, py in 0.0f64..1.0) {
        let model = gp(x, &y, 0.4, 1e-4);
        let fantasy = model.predict_mean(&[nx, ny]);
        let cond = model.condition_on(&[vec![nx, ny]], &[fantasy]).unwrap();
        let (_, v0) = model.predict(&[px, py]);
        let (_, v1) = cond.predict(&[px, py]);
        // Conditioning on one more (noisy) observation cannot inflate
        // the posterior variance anywhere (information never hurts).
        prop_assert!(v1 <= v0 * (1.0 + 1e-6) + 1e-9, "{v0} -> {v1}");
    }

    #[test]
    fn predictions_shift_equivariantly((x, y) in dataset(),
                                       shift in -50.0f64..50.0,
                                       px in 0.0f64..1.0, py in 0.0f64..1.0) {
        // GP(y + c) predicts GP(y) + c with identical variance: the
        // standardization + profiled trend must make the model exactly
        // shift-equivariant.
        let m1 = gp(x.clone(), &y, 0.4, 1e-4);
        let shifted: Vec<f64> = y.iter().map(|v| v + shift).collect();
        let m2 = gp(x, &shifted, 0.4, 1e-4);
        let (mu1, v1) = m1.predict(&[px, py]);
        let (mu2, v2) = m2.predict(&[px, py]);
        prop_assert!((mu2 - mu1 - shift).abs() < 1e-6 * (1.0 + mu1.abs() + shift.abs()),
                     "means {mu1} vs {mu2} (shift {shift})");
        prop_assert!((v1 - v2).abs() < 1e-6 * (1.0 + v1));
    }

    #[test]
    fn joint_posterior_is_symmetric_psd((x, y) in dataset(),
                                        ax in 0.0f64..1.0, ay in 0.0f64..1.0,
                                        bx in 0.0f64..1.0, by in 0.0f64..1.0) {
        let model = gp(x, &y, 0.35, 1e-4);
        let pts = Matrix::from_rows(&[vec![ax, ay], vec![bx, by]]).unwrap();
        let (_, cov) = model.posterior_joint(&pts).unwrap();
        prop_assert!((cov[(0, 1)] - cov[(1, 0)]).abs() < 1e-10);
        // 2x2 PSD: diagonal nonnegative, determinant ≥ −tol.
        prop_assert!(cov[(0, 0)] >= 0.0 && cov[(1, 1)] >= 0.0);
        let det = cov[(0, 0)] * cov[(1, 1)] - cov[(0, 1)] * cov[(1, 0)];
        prop_assert!(det >= -1e-9 * (1.0 + cov[(0, 0)] * cov[(1, 1)]), "det {det}");
    }

    #[test]
    fn workspace_mll_matches_naive_randomized(d in 1usize..=4,
                                              flat in prop::collection::vec(0.0f64..1.0, 16..80),
                                              ys in prop::collection::vec(-5.0f64..5.0, 4..16),
                                              log_ls in prop::collection::vec(-2.0f64..0.7, 4),
                                              log_os in -1.0f64..1.0,
                                              log_noise in -7.0f64..-2.5) {
        // The cached-distance, inverse-free MLL path must reproduce the
        // naive quadratic-loop reference across random hyperparameters,
        // dimensions, and training sizes to <= 1e-10 relative error.
        let n = ys.len().min(flat.len() / d);
        prop_assume!(n >= 2);
        let mut x = Matrix::zeros(n, d);
        for i in 0..n {
            for j in 0..d {
                x[(i, j)] = flat[i * d + j];
            }
        }
        let m = pbo_linalg::vec_ops::mean(&ys[..n]);
        let s = pbo_linalg::vec_ops::variance(&ys[..n]).sqrt().max(1e-8);
        let y_std: Vec<f64> = ys[..n].iter().map(|v| (v - m) / s).collect();
        let mut params = log_ls[..d].to_vec();
        params.push(log_os);
        params.push(log_noise);
        let mut ws = pbo_gp::FitWorkspace::new();
        ws.prepare(&x);
        for family in [KernelType::Matern52, KernelType::Matern32, KernelType::Rbf] {
            let (v_naive, g_naive) =
                pbo_gp::fit::mll_and_grad(family, &x, &y_std, &params).unwrap();
            let (v_ws, g_ws) =
                pbo_gp::workspace::mll_and_grad_ws(family, &mut ws, &y_std, &params)
                    .unwrap();
            prop_assert!((v_ws - v_naive).abs() <= 1e-10 * (1.0 + v_naive.abs()),
                         "{} value: ws {v_ws} vs naive {v_naive}", family.name());
            for (i, (a, b)) in g_ws.iter().zip(&g_naive).enumerate() {
                prop_assert!((a - b).abs() <= 1e-10 * (1.0 + b.abs()),
                             "{} grad[{i}]: ws {a} vs naive {b} (n={n}, d={d})",
                             family.name());
            }
            let v_only =
                pbo_gp::workspace::mll_value_ws(family, &mut ws, &y_std, &params)
                    .unwrap();
            prop_assert!(v_only == v_ws, "{} value-only path diverged", family.name());
        }
    }

    #[test]
    fn noise_monotonically_smooths_in_sample((x, y) in dataset()) {
        // With larger noise, in-sample residuals can only grow (the
        // model trusts the data less).
        prop_assume!(pbo_linalg::vec_ops::variance(&y) > 1e-6);
        let tight = gp(x.clone(), &y, 0.4, 1e-8);
        let loose = gp(x.clone(), &y, 0.4, 0.5);
        let mut res_tight = 0.0;
        let mut res_loose = 0.0;
        for i in 0..x.rows() {
            let p = x.row(i).to_vec();
            res_tight += (tight.predict_mean(&p) - y[i]).powi(2);
            res_loose += (loose.predict_mean(&p) - y[i]).powi(2);
        }
        prop_assert!(res_loose >= res_tight - 1e-9,
                     "tight {res_tight} vs loose {res_loose}");
    }
}
