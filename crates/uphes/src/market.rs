//! Energy and reserve market models.
//!
//! The plant participates in two market floors (paper §2.1): the
//! day-ahead **energy market** (8 three-hour blocks, power bought when
//! pumping / sold when generating at the quarter-hourly price) and the
//! **reserve market** (4 six-hour blocks, capacity payments for holding
//! upward-regulation headroom, with penalties when an activation cannot
//! be served).

use crate::{STEP_HOURS, STEPS};

/// Day-ahead energy market: a deterministic daily price shape that the
/// scenario generator perturbs multiplicatively.
#[derive(Debug, Clone)]
pub struct DayAheadMarket {
    /// Quarter-hourly base prices \[EUR/MWh\].
    pub base_prices: Vec<f64>,
}

impl Default for DayAheadMarket {
    fn default() -> Self {
        DayAheadMarket { base_prices: belgian_shape() }
    }
}

/// A stylised Belgian day-ahead shape: cheap night valley, morning ramp
/// to a peak around 08:00–10:00, midday dip, evening peak around
/// 18:00–21:00.
fn belgian_shape() -> Vec<f64> {
    (0..STEPS)
        .map(|t| {
            let hour = t as f64 * STEP_HOURS;
            let night = 34.0;
            let morning = 52.0 * gaussian(hour, 8.5, 2.0);
            let midday = 18.0 * gaussian(hour, 13.0, 2.5);
            let evening = 62.0 * gaussian(hour, 19.5, 2.2);
            night + morning + midday + evening
        })
        .collect()
}

#[inline]
fn gaussian(x: f64, mu: f64, sd: f64) -> f64 {
    let z = (x - mu) / sd;
    (-0.5 * z * z).exp()
}

impl DayAheadMarket {
    /// Price at a simulation step \[EUR/MWh\].
    pub fn price(&self, step: usize) -> f64 {
        self.base_prices[step]
    }

    /// Mean daily price (used for the terminal water value).
    pub fn mean_price(&self) -> f64 {
        self.base_prices.iter().sum::<f64>() / self.base_prices.len() as f64
    }
}

/// Reserve (ancillary-services) market parameters.
#[derive(Debug, Clone)]
pub struct ReserveMarket {
    /// Capacity payment [EUR per MW per hour of reservation].
    pub capacity_price: f64,
    /// Probability that any given quarter-hour sees an activation event.
    pub activation_prob: f64,
    /// Activated energy is remunerated at this multiple of the energy
    /// price.
    pub activation_price_factor: f64,
    /// Penalty for undelivered activated energy \[EUR/MWh\].
    pub shortfall_penalty: f64,
}

impl Default for ReserveMarket {
    fn default() -> Self {
        ReserveMarket {
            capacity_price: 6.0,
            activation_prob: 0.06,
            activation_price_factor: 1.15,
            shortfall_penalty: 450.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_has_two_peaks_and_cheap_night() {
        let m = DayAheadMarket::default();
        let price_at = |h: f64| m.price((h / STEP_HOURS) as usize);
        let night = price_at(3.0);
        let morning = price_at(8.5);
        let midday = price_at(13.5);
        let evening = price_at(19.5);
        assert!(night < 45.0, "night {night}");
        assert!(morning > night + 25.0, "morning {morning}");
        assert!(evening > morning, "evening {evening} vs morning {morning}");
        assert!(midday < morning, "midday {midday}");
    }

    #[test]
    fn prices_positive_and_bounded() {
        let m = DayAheadMarket::default();
        for t in 0..STEPS {
            let p = m.price(t);
            assert!(p > 10.0 && p < 200.0, "step {t}: {p}");
        }
    }

    #[test]
    fn mean_price_between_extremes() {
        let m = DayAheadMarket::default();
        let lo = m.base_prices.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = m.base_prices.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mean = m.mean_price();
        assert!(mean > lo && mean < hi);
    }
}
