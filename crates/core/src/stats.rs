//! Summary statistics and Welch's t-test (the paper's Fig. 8 pairwise
//! comparison).
//!
//! The special functions (log-gamma, regularized incomplete beta) are
//! implemented in-repo: Lanczos approximation for `ln Γ` and the
//! Lentz continued fraction for `I_x(a, b)`.

/// Min / mean / max / standard deviation summary (Table 7 row format).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Smallest sample.
    pub min: f64,
    /// Sample mean.
    pub mean: f64,
    /// Largest sample.
    pub max: f64,
    /// Unbiased standard deviation.
    pub sd: f64,
    /// Sample count.
    pub n: usize,
}

/// Summarize a sample. Empty input yields NaNs with `n = 0`.
pub fn summarize(xs: &[f64]) -> Summary {
    if xs.is_empty() {
        return Summary { min: f64::NAN, mean: f64::NAN, max: f64::NAN, sd: f64::NAN, n: 0 };
    }
    let mean = pbo_linalg::vec_ops::mean(xs);
    let sd = pbo_linalg::vec_ops::variance(xs).sqrt();
    Summary {
        min: xs.iter().copied().fold(f64::INFINITY, f64::min),
        mean,
        max: xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        sd,
        n: xs.len(),
    }
}

/// `ln Γ(x)` by the Lanczos approximation (|ε| < 2e-10 for x > 0).
pub fn ln_gamma(x: f64) -> f64 {
    const COEF: [f64; 6] = [
        76.18009172947146,
        -86.50532032941677,
        24.01409824083091,
        -1.231739572450155,
        0.1208650973866179e-2,
        -0.5395239384953e-5,
    ];
    let y = x;
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    let mut ser = 1.000000000190015;
    let mut yy = y;
    for c in COEF {
        yy += 1.0;
        ser += c / yy;
    }
    -tmp + (2.5066282746310005 * ser / x).ln()
}

/// Regularized incomplete beta function `I_x(a, b)` via the continued
/// fraction (Numerical Recipes `betai`/`betacf`).
pub fn beta_inc(a: f64, b: f64, x: f64) -> f64 {
    assert!((0.0..=1.0).contains(&x), "x must be in [0,1]");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front =
        ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Continued fraction of the incomplete beta (modified Lentz).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..200 {
        let m = m as f64;
        let m2 = 2.0 * m;
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-14 {
            break;
        }
    }
    h
}

/// Two-sided p-value of Student's t statistic with `nu` degrees of
/// freedom: `P(|T| > |t|) = I_{nu/(nu+t²)}(nu/2, 1/2)`.
pub fn t_sf_two_sided(t: f64, nu: f64) -> f64 {
    if !t.is_finite() || nu <= 0.0 {
        return f64::NAN;
    }
    beta_inc(0.5 * nu, 0.5, nu / (nu + t * t)).clamp(0.0, 1.0)
}

/// Welch's unequal-variance t-test. Returns `(t, dof, p_two_sided)`.
/// Degenerate inputs (all-equal samples) return `p = 1` when the means
/// coincide and `p = 0` otherwise.
pub fn welch_t_test(a: &[f64], b: &[f64]) -> (f64, f64, f64) {
    assert!(a.len() >= 2 && b.len() >= 2, "need at least two samples per group");
    let (ma, mb) = (pbo_linalg::vec_ops::mean(a), pbo_linalg::vec_ops::mean(b));
    let (va, vb) = (
        pbo_linalg::vec_ops::variance(a),
        pbo_linalg::vec_ops::variance(b),
    );
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let se2 = va / na + vb / nb;
    if se2 <= 0.0 {
        let p = if (ma - mb).abs() < 1e-300 { 1.0 } else { 0.0 };
        return (if p == 1.0 { 0.0 } else { f64::INFINITY }, na + nb - 2.0, p);
    }
    let t = (ma - mb) / se2.sqrt();
    let dof = se2 * se2
        / ((va / na).powi(2) / (na - 1.0) + (vb / nb).powi(2) / (nb - 1.0)).max(1e-300);
    (t, dof, t_sf_two_sided(t, dof))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.sd - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.n, 4);
        assert_eq!(summarize(&[]).n, 0);
    }

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = 1, Γ(2) = 1, Γ(5) = 24, Γ(0.5) = √π.
        assert!(ln_gamma(1.0).abs() < 1e-9);
        assert!(ln_gamma(2.0).abs() < 1e-9);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-9);
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-9);
    }

    #[test]
    fn beta_inc_endpoints_and_symmetry() {
        assert_eq!(beta_inc(2.0, 3.0, 0.0), 0.0);
        assert_eq!(beta_inc(2.0, 3.0, 1.0), 1.0);
        // I_x(a,b) = 1 − I_{1−x}(b,a)
        for &(a, b, x) in &[(2.0, 5.0, 0.3), (0.7, 1.3, 0.6), (4.0, 4.0, 0.5)] {
            let lhs = beta_inc(a, b, x);
            let rhs = 1.0 - beta_inc(b, a, 1.0 - x);
            assert!((lhs - rhs).abs() < 1e-10, "({a},{b},{x})");
        }
        // I_0.5(a,a) = 0.5.
        assert!((beta_inc(3.0, 3.0, 0.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn t_distribution_reference_values() {
        // With nu = 10: P(|T| > 2.228) ≈ 0.05 (classic t-table value).
        let p = t_sf_two_sided(2.228, 10.0);
        assert!((p - 0.05).abs() < 2e-3, "p = {p}");
        // t = 0 → p = 1.
        assert!((t_sf_two_sided(0.0, 7.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn welch_detects_separated_samples() {
        let a = [10.0, 10.5, 9.8, 10.2, 9.9, 10.1];
        let b = [12.0, 12.5, 11.8, 12.2, 11.9, 12.1];
        let (t, _, p) = welch_t_test(&a, &b);
        assert!(t < 0.0);
        assert!(p < 1e-6, "p = {p}");
    }

    #[test]
    fn welch_same_distribution_large_p() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [1.1, 2.1, 2.9, 4.1, 4.8];
        let (_, _, p) = welch_t_test(&a, &b);
        assert!(p > 0.5, "p = {p}");
    }

    #[test]
    fn welch_degenerate_equal_constant_samples() {
        let a = [3.0, 3.0, 3.0];
        let b = [3.0, 3.0, 3.0];
        let (_, _, p) = welch_t_test(&a, &b);
        assert_eq!(p, 1.0);
        let c = [4.0, 4.0, 4.0];
        let (_, _, p2) = welch_t_test(&a, &c);
        assert_eq!(p2, 0.0);
    }
}
